package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// This file is the interprocedural layer under hotalloc: a package-local
// call graph whose nodes carry per-function effect summaries (does the body
// allocate? read the wall clock? construct an rng?), so //crlint:hotpath
// constraints propagate transitively through unannotated helpers with a
// precise "via call chain X → Y" diagnostic instead of requiring an
// annotation on every callee.
//
// The graph is deliberately conservative and local:
//
//   - Edges exist only between functions declared in the package under
//     analysis. Calls into other packages are summarized syntactically at
//     the call site (time.*, context deadline helpers, xrand constructors)
//     and otherwise assumed effect-free — cross-package allocation effects
//     remain the benchmarks' job, exactly as before.
//   - Interface method calls and calls of function values cannot be
//     resolved statically; they mark the calling node `unknown` and the
//     chain search does not guess through them.
//   - Function and method values referenced without being called (passed as
//     callbacks, stored in fields) still produce edges: a reference is a
//     potential call.
//   - A closure literal is summarized as a single allocation effect at the
//     literal; the walk does not descend into its body (the capture itself
//     is the hot-path violation, and the closure runs under its own
//     function's rules if it is ever extracted).

// effectKind classifies one direct effect a function body can have.
type effectKind int

const (
	effectAlloc effectKind = iota
	effectClock
	effectRNG
	numEffectKinds
)

// phrase returns the noun phrase used in chain diagnostics.
func (k effectKind) phrase() string {
	switch k {
	case effectAlloc:
		return "an allocation"
	case effectClock:
		return "a wall-clock read"
	default:
		return "an rng construction"
	}
}

// An effect is one direct determinism- or allocation-relevant operation in a
// function body.
type effect struct {
	pos   token.Pos
	kind  effectKind
	short string // noun phrase for chain diagnostics, e.g. "closure literal"
	why   string // direct-diagnostic tail, e.g. "calls make, which allocates ..."
}

// A callSite is one statically resolved reference from a function to another
// function declared in the same package (a call, or a function/method value
// reference).
type callSite struct {
	pos    token.Pos
	callee *funcNode
}

// A funcNode is one function's summary in the package-local call graph.
type funcNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	name    string // display name: "helper" or "Type.Method"
	hotpath bool
	calls   []callSite
	unknown bool // made a call the graph cannot resolve (interface dispatch, func value)
	effects []effect
}

// A callGraph holds the per-function summaries for one package, in
// declaration order.
type callGraph struct {
	nodes map[*types.Func]*funcNode
	order []*funcNode
}

// buildCallGraph constructs the graph over the pass's files (test files
// already excluded by the driver when the analyzer skips them).
func buildCallGraph(pass *Pass) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*funcNode{}}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &funcNode{fn: fn, decl: fd, name: funcDisplayName(fn, fd), hotpath: IsHotpath(fd)}
			g.nodes[fn] = node
			g.order = append(g.order, node)
		}
	}
	for _, node := range g.order {
		summarize(pass, g, node)
	}
	return g
}

// funcDisplayName renders "helper" for functions and "Type.Method" for
// methods.
func funcDisplayName(fn *types.Func, fd *ast.FuncDecl) string {
	if _, typeName := recvTypeName(fn); typeName != "" {
		return typeName + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// summarize fills one node's direct effects and outgoing edges.
func summarize(pass *Pass, g *callGraph, node *funcNode) {
	info := pass.TypesInfo
	reuse := reuseBuffers(info, node.decl)
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			node.effects = append(node.effects, effect{
				pos: n.Pos(), kind: effectAlloc, short: "closure literal",
				why: "closure literal allocates (captured variables escape); hoist it out of the hot path",
			})
			return false
		case *ast.CallExpr:
			switch {
			case isBuiltin(info, n.Fun, "make"):
				node.effects = append(node.effects, effect{
					pos: n.Pos(), kind: effectAlloc, short: "make call",
					why: "calls make, which allocates every call; preallocate scratch buffers at construction time",
				})
			case isBuiltin(info, n.Fun, "new"):
				node.effects = append(node.effects, effect{
					pos: n.Pos(), kind: effectAlloc, short: "new call",
					why: "calls new, which allocates every call; preallocate at construction time",
				})
			case isBuiltin(info, n.Fun, "append") && len(n.Args) > 0:
				if !appendsIntoReuse(info, n.Args[0], reuse) {
					node.effects = append(node.effects, effect{
						pos: n.Pos(), kind: effectAlloc, short: "growing append",
						why: "append may grow and allocate; append into a preallocated scratch buffer resliced to [:0]",
					})
				}
			default:
				if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
					if t := info.TypeOf(n); t != nil {
						if _, isSlice := t.Underlying().(*types.Slice); isSlice {
							node.effects = append(node.effects, effect{
								pos: n.Pos(), kind: effectAlloc, short: "slice conversion",
								why: "conversion allocates a fresh slice",
							})
						}
					}
				} else if !resolvableCall(info, n) {
					node.unknown = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					node.effects = append(node.effects, effect{
						pos: n.Pos(), kind: effectAlloc, short: "&composite literal",
						why: "&composite literal allocates; reuse a preallocated value",
					})
					return false
				}
			}
		case *ast.CompositeLit:
			if t := info.TypeOf(n); t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					node.effects = append(node.effects, effect{
						pos: n.Pos(), kind: effectAlloc, short: "slice/map literal",
						why: "slice/map literal allocates; reuse a preallocated buffer",
					})
				}
			}
		case *ast.Ident:
			fn, ok := info.Uses[n].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg() == pass.Pkg {
				if callee, ok := g.nodes[fn]; ok {
					node.calls = append(node.calls, callSite{pos: n.Pos(), callee: callee})
				} else {
					// An interface method of a locally declared interface, or
					// a bodyless declaration: no summary to chase.
					node.unknown = true
				}
				return true
			}
			if e, ok := externalEffect(fn, n.Pos()); ok {
				node.effects = append(node.effects, e)
			}
		}
		return true
	})
}

// resolvableCall reports whether a call expression's callee can be resolved
// statically: a builtin, a named function or method, or a conversion. Calls
// of function values and similar dynamic dispatch return false.
func resolvableCall(info *types.Info, call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if base, ok := ast.Unparen(f.X).(*ast.Ident); ok {
			id = base
		}
	}
	if id == nil {
		return false
	}
	switch info.Uses[id].(type) {
	case *types.Func, *types.Builtin:
		return true
	}
	return false
}

// contextDeadlineFuncs are the context package helpers that arm a wall-clock
// deadline; like the time entry points they make behavior depend on real
// time.
var contextDeadlineFuncs = map[string]bool{
	"WithTimeout":       true,
	"WithTimeoutCause":  true,
	"WithDeadline":      true,
	"WithDeadlineCause": true,
}

// externalEffect classifies a reference to another package's function as a
// clock or rng effect, when it is one.
func externalEffect(fn *types.Func, pos token.Pos) (effect, bool) {
	pkg := fn.Pkg()
	switch {
	case pkg.Path() == "time" && wallClockFuncs[fn.Name()]:
		return effect{
			pos: pos, kind: effectClock, short: "time." + fn.Name() + " call",
			why: "calls time." + fn.Name() + ", which reads the wall clock; hot-path behavior must be a pure function of the seed",
		}, true
	case pkg.Path() == "context" && contextDeadlineFuncs[fn.Name()]:
		return effect{
			pos: pos, kind: effectClock, short: "context." + fn.Name() + " call",
			why: "calls context." + fn.Name() + ", which arms a wall-clock deadline; hot-path behavior must be a pure function of the seed",
		}, true
	case pkg.Name() == "xrand" && (fn.Name() == "New" || fn.Name() == "NewReseedable"):
		return effect{
			pos: pos, kind: effectRNG, short: "xrand." + fn.Name() + " call",
			why: "calls xrand." + fn.Name() + ", which constructs a generator (allocates, and risks ad-hoc seeding); construct generators outside the hot path",
		}, true
	}
	return effect{}, false
}

// chainTo searches breadth-first from start for the nearest reachable direct
// effect of the given kind, returning the function names along the shortest
// chain (start first) and the effect. Hot-path-annotated nodes are not
// traversed: they are checked at their own declaration, so reporting through
// them would duplicate diagnostics. Unknown calls are not guessed through.
func (g *callGraph) chainTo(start *funcNode, kind effectKind) ([]string, effect, bool) {
	type item struct {
		node *funcNode
		path []string
	}
	visited := map[*funcNode]bool{start: true}
	queue := []item{{start, []string{start.name}}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.node.effects {
			if e.kind == kind {
				return cur.path, e, true
			}
		}
		for _, site := range cur.node.calls {
			next := site.callee
			if visited[next] || next.hotpath {
				continue
			}
			visited[next] = true
			path := append(append([]string(nil), cur.path...), next.name)
			queue = append(queue, item{next, path})
		}
	}
	return nil, effect{}, false
}

// shortPosition renders pos as "file.go:NN" for chain diagnostics.
func shortPosition(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}

// chainString joins a call chain for display.
func chainString(root string, path []string) string {
	return root + " → " + strings.Join(path, " → ")
}
