package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PartWrite enforces the fixed-partition contract for intra-process
// parallelism (DESIGN.md §8, introduced with the parallel Deliver's
// tile t → worker t mod W partition): inside a `go func` closure launched
// from a loop — a worker-pool or fan-out shape, so several instances of the
// closure run concurrently — writes to captured slices, arrays, and struct
// fields must land in a partition the goroutine owns, i.e. be indexed by an
// expression derived from a goroutine-owned variable (a closure parameter,
// a variable declared inside the closure such as a channel-received index,
// or a per-iteration variable of the launching loop, which Go ≥1.22 gives
// each iteration its own instance of).
//
// Three bug shapes are flagged:
//
//   - writes to a captured map: concurrent map writes fault at runtime no
//     matter how keys are partitioned;
//   - non-atomic counter bumps (x++, x += ...) on captured variables or
//     cells outside the goroutine's partition;
//   - plain writes to captured locations with no goroutine-owned index —
//     last-writer-wins races that break byte-identical reruns long before
//     the race detector sees them.
//
// A single goroutine launched outside any loop (the wait-then-close join
// idiom) is exempt, as is any closure that takes a lock: a body calling a
// Lock method is assumed mutex-guarded and left to the race detector.
// Channel sends are always legal — channels are the sanctioned way out of a
// goroutine.
var PartWrite = &Analyzer{
	Name:          "partwrite",
	Doc:           "require writes to captured state inside loop-launched goroutines to be partitioned by a goroutine-owned index",
	SkipTestFiles: true,
	Run:           partwrite,
}

func partwrite(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGoroutines(pass, fd)
		}
	}
	return nil
}

// checkGoroutines finds every `go func(...){...}(...)` launched from inside
// a loop and checks the closure's captured writes.
func checkGoroutines(pass *Pass, fd *ast.FuncDecl) {
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if gs, ok := n.(*ast.GoStmt); ok {
			if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
				// Innermost enclosing loop: the launch multiplicity.
				var loop ast.Stmt
				for i := len(stack) - 1; i >= 0 && loop == nil; i-- {
					switch s := stack[i].(type) {
					case *ast.ForStmt:
						loop = s
					case *ast.RangeStmt:
						loop = s
					case *ast.FuncLit:
						// A closure boundary resets the loop context: the
						// launching loop must be in the same function body.
						i = -1
					}
				}
				if loop != nil {
					checkClosureWrites(pass, loop, lit)
				}
			}
		}
		stack = append(stack, n)
		return true
	})
}

// checkClosureWrites flags unpartitioned writes to captured state inside one
// loop-launched goroutine closure.
func checkClosureWrites(pass *Pass, loop ast.Stmt, lit *ast.FuncLit) {
	info := pass.TypesInfo
	if takesLock(lit) {
		return
	}
	// A variable is goroutine-owned when it is declared inside the innermost
	// launching loop: closure parameters and closure-local variables (both
	// positioned inside the loop), and the loop's own per-iteration
	// variables. Variables declared before the loop — or belonging to an
	// outer loop, and therefore shared by every goroutine this loop launches
	// — are captured shared state.
	owned := func(obj types.Object) bool {
		return obj != nil && loop.Pos() <= obj.Pos() && obj.Pos() < loop.End()
	}
	check := func(lhs ast.Expr, compound bool) {
		root := rootIdent(lhs)
		if root == nil || root.Name == "_" {
			return
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		if obj == nil || owned(obj) {
			return
		}
		if mapWrite(info, lhs) {
			pass.Reportf(lhs.Pos(), "write to captured map %s inside a goroutine launched in a loop is a concurrent map write; communicate over a channel or give each goroutine its own map (//crlint:allow partwrite <reason>)", root.Name)
			return
		}
		if partitionedBy(info, lhs, owned) {
			return
		}
		if compound {
			pass.Reportf(lhs.Pos(), "non-atomic update of captured %s inside a goroutine launched in a loop; use sync/atomic, a channel, or a per-worker cell indexed by the goroutine's own worker id (//crlint:allow partwrite <reason>)", root.Name)
			return
		}
		pass.Reportf(lhs.Pos(), "write to captured %s inside a goroutine launched in a loop is not partitioned by a goroutine-owned index; write into a fixed partition derived from the worker/tile variable, as in tile t → worker t mod W (//crlint:allow partwrite <reason>)", root.Name)
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				check(lhs, compound)
			}
		case *ast.IncDecStmt:
			check(n.X, true)
		}
		return true
	})
}

// takesLock reports whether the closure body calls a Lock method — the
// mutex-guarded idiom partwrite leaves to the race detector.
func takesLock(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mapWrite reports whether the write target indexes into a map anywhere
// along its chain (m[k] = v, s.m[k].f = v, ...).
func mapWrite(info *types.Info, lhs ast.Expr) bool {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			if t := info.TypeOf(e.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					return true
				}
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return false
		}
	}
}

// partitionedBy reports whether some index expression along the write
// target's chain mentions a goroutine-owned variable — the fixed-partition
// shape a[w], res.Values[i], tiles[base+t].
func partitionedBy(info *types.Info, lhs ast.Expr, owned func(types.Object) bool) bool {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			for obj := range exprObjs(info, e.Index) {
				if owned(obj) {
					return true
				}
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return false
		}
	}
}
