package lint_test

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"fadingcr/internal/lint"
)

// backtickCell extracts the first `backticked` token from a table cell.
var backtickCell = regexp.MustCompile("`([^`]+)`")

// parseContractTable extracts rule → analyzer pairs from the DESIGN.md §8
// "Determinism contract — enforced rules" table: rows whose first cell is a
// backticked rule id, with the enforcing analyzer backticked in the third
// cell.
func parseContractTable(t *testing.T, design string) map[string]string {
	t.Helper()
	idx := strings.Index(design, "### Determinism contract — enforced rules")
	if idx < 0 {
		t.Fatal("DESIGN.md has no \"Determinism contract — enforced rules\" section")
	}
	section := design[idx:]
	if end := strings.Index(section[1:], "\n### "); end >= 0 {
		section = section[:end+1]
	}
	rules := map[string]string{}
	for _, line := range strings.Split(section, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		cells := strings.Split(line, "|")
		// Leading and trailing empty cells from the outer pipes.
		if len(cells) < 5 {
			t.Errorf("malformed contract table row (want 4 columns): %s", line)
			continue
		}
		rule := backtickCell.FindStringSubmatch(cells[1])
		analyzer := backtickCell.FindStringSubmatch(cells[3])
		if rule == nil || analyzer == nil {
			t.Errorf("contract table row lacks backticked rule/analyzer: %s", line)
			continue
		}
		if _, dup := rules[rule[1]]; dup {
			t.Errorf("contract table documents rule %q twice", rule[1])
		}
		rules[rule[1]] = analyzer[1]
	}
	return rules
}

// TestContractManifest proves the DESIGN.md §8 table, the Contracts()
// manifest, and the analyzer registry agree exactly: every documented rule
// has an enforcing analyzer, every registered analyzer has a documented
// contract, and no pairing has drifted.
func TestContractManifest(t *testing.T) {
	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("read DESIGN.md: %v", err)
	}
	documented := parseContractTable(t, string(design))
	if len(documented) == 0 {
		t.Fatal("no contract rows parsed from DESIGN.md")
	}

	registered := map[string]bool{}
	for _, a := range lint.All() {
		registered[a.Name] = true
	}

	manifest := map[string]lint.Contract{}
	for _, c := range lint.Contracts() {
		if _, dup := manifest[c.ID]; dup {
			t.Errorf("Contracts() lists %q twice", c.ID)
		}
		manifest[c.ID] = c
		if c.Statement == "" || c.Exemption == "" {
			t.Errorf("contract %q needs a statement and an exemption policy", c.ID)
		}
		if !registered[c.Analyzer] {
			t.Errorf("contract %q names analyzer %q, which is not in lint.All()", c.ID, c.Analyzer)
		}
	}

	// DESIGN.md rows ↔ Contracts() entries, both directions.
	for id, analyzer := range documented {
		c, ok := manifest[id]
		if !ok {
			t.Errorf("DESIGN.md documents rule %q with no Contracts() entry — a documented contract must have an enforcing analyzer", id)
			continue
		}
		if c.Analyzer != analyzer {
			t.Errorf("DESIGN.md says rule %q is enforced by %q; Contracts() says %q", id, analyzer, c.Analyzer)
		}
	}
	for id := range manifest {
		if _, ok := documented[id]; !ok {
			t.Errorf("Contracts() entry %q has no DESIGN.md table row", id)
		}
	}

	// Every registered analyzer enforces a documented contract.
	for name := range registered {
		if _, ok := manifest[name]; !ok {
			t.Errorf("analyzer %q is registered but appears in no contract — document it in DESIGN.md §8 and Contracts()", name)
		}
	}
}
