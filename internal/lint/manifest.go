package lint

// The contract manifest is the machine-checked bridge between DESIGN.md §8
// ("Determinism contract — enforced rules") and the analyzer registry:
// every documented rule names the analyzer that enforces it, and
// TestContractManifest fails if the table and this list drift apart in
// either direction — a documented contract with no enforcing analyzer, an
// analyzer with no documented contract, or a mismatched pairing.

// A Contract is one enforced rule of the determinism contract.
type Contract struct {
	// ID is the rule identifier; by convention it equals the enforcing
	// analyzer's name so diagnostics, allow directives, and the DESIGN.md
	// table all use one vocabulary.
	ID string
	// Statement is the contract in one sentence.
	Statement string
	// Analyzer is the name of the registered analyzer enforcing the rule.
	Analyzer string
	// Exemption describes the sanctioned escape hatch.
	Exemption string
}

// Contracts returns the full manifest in registry order.
func Contracts() []Contract {
	return []Contract{
		{
			ID:        "xrandonly",
			Statement: "All randomness flows through internal/xrand; raw math/rand generators appear nowhere else, tests included.",
			Analyzer:  "xrandonly",
			Exemption: "//crlint:allow xrandonly <reason> (internal/xrand itself is exempt)",
		},
		{
			ID:        "nowallclock",
			Statement: "Library code never reads the wall clock or arms wall-clock deadlines; runs are pure functions of their seeds.",
			Analyzer:  "nowallclock",
			Exemption: "//crlint:allow nowallclock <reason> on reporting-only timing sites",
		},
		{
			ID:        "maporder",
			Statement: "No map iteration feeds output, aggregation, or rng consumption; order-sensitive loops iterate over sorted keys.",
			Analyzer:  "maporder",
			Exemption: "//crlint:allow maporder <reason>, or the collect-then-sort idiom",
		},
		{
			ID:        "seedsplit",
			Statement: "Every generator gets its own xrand.Split-derived seed; no seed expression is reused or loop-invariant.",
			Analyzer:  "seedsplit",
			Exemption: "//crlint:allow seedsplit <reason> for deliberate stream comparisons",
		},
		{
			ID:        "hotalloc",
			Statement: "Functions annotated //crlint:hotpath neither contain nor transitively reach allocation sites, wall-clock reads, or rng constructions through same-package helpers.",
			Analyzer:  "hotalloc",
			Exemption: "//crlint:allow hotalloc <reason> on the call or allocation site",
		},
		{
			ID:        "partwrite",
			Statement: "Goroutines launched in a loop write captured state only through a goroutine-owned partition index (tile t → worker t mod W); no shared writes or non-atomic counter bumps.",
			Analyzer:  "partwrite",
			Exemption: "//crlint:allow partwrite <reason>, mutex-guarded closures, or channels",
		},
		{
			ID:        "floatorder",
			Statement: "Floating-point accumulation follows ascending index order; no reductions driven by descending loops or channel-receive arrival order.",
			Analyzer:  "floatorder",
			Exemption: "//crlint:allow floatorder <reason> with a documented merge order",
		},
		{
			ID:        "spechash",
			Statement: "Structs annotated //crlint:spechash keep canonical hashes stable: exported serialized fields carry json omitempty tags and appear in the package's <type>HashFields list.",
			Analyzer:  "spechash",
			Exemption: "//crlint:allow spechash <reason> on required always-present fields",
		},
	}
}
