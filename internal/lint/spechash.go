package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// SpecHash guards canonical-hash stability for spec structs (DESIGN.md §8):
// job identity, the serve result cache, and recorded experiment artifacts
// all key on the SHA-256 of a spec's canonical JSON, so adding a knob must
// never change the hash of existing specs. A struct opts in by carrying
//
//	//crlint:spechash
//
// in its doc comment. For each such struct the analyzer requires:
//
//   - every exported, serialized field carries a json tag with omitempty,
//     so the zero value marshals away and pre-existing specs keep their
//     bytes — required fields whose tag is deliberately sticky (they are
//     always present, and adding omitempty now would itself change legacy
//     hashes) carry //crlint:allow spechash <reason> on the field;
//   - the package declares the canonical-hash field list
//     `var <typeName>HashFields = []string{...}` (type name lower-cased at
//     the first rune) naming exactly the serialized fields by their json
//     names, so a new field shows up in review as an explicit hash-surface
//     change and the list is testable against the struct by reflection.
//
// Fields tagged json:"-" are not serialized and exempt from both checks;
// unexported fields are invisible to encoding/json and ignored.
var SpecHash = &Analyzer{
	Name:          "spechash",
	Doc:           "require omitempty tags and a canonical-hash field list on structs annotated //crlint:spechash",
	SkipTestFiles: true,
	Run:           spechash,
}

// SpecHashDirective is the doc-comment directive opting a struct into the
// spechash analyzer.
const SpecHashDirective = "//crlint:spechash"

func spechash(pass *Pass) error {
	lists := hashFieldLists(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				if !hasDirective(doc, SpecHashDirective) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "//crlint:spechash applies to struct types; %s is not a struct", ts.Name.Name)
					continue
				}
				checkSpecStruct(pass, ts, st, lists)
			}
		}
	}
	return nil
}

// hasDirective reports whether the doc comment contains the exact directive
// line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// hashList is one package-level `var xHashFields = []string{...}`
// declaration.
type hashList struct {
	pos    token.Pos
	fields []string
}

// hashFieldLists collects every package-level *HashFields string-slice
// declaration by variable name.
func hashFieldLists(pass *Pass) map[string]*hashList {
	lists := map[string]*hashList{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasSuffix(name.Name, "HashFields") || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					l := &hashList{pos: name.Pos()}
					for _, elt := range cl.Elts {
						if lit, ok := elt.(*ast.BasicLit); ok && lit.Kind == token.STRING {
							if s, err := strconv.Unquote(lit.Value); err == nil {
								l.fields = append(l.fields, s)
							}
						}
					}
					lists[name.Name] = l
				}
			}
		}
	}
	return lists
}

func checkSpecStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType, lists map[string]*hashList) {
	typeName := ts.Name.Name
	serialized := map[string]bool{}
	for _, field := range st.Fields.List {
		names := field.Names
		if len(names) == 0 { // embedded field: named by its type
			if root := rootIdent(field.Type); root != nil {
				names = []*ast.Ident{root}
			}
		}
		for _, name := range names {
			if !name.IsExported() {
				continue
			}
			jsonName, hasOmitempty, dropped := jsonTagInfo(field.Tag, name.Name)
			if dropped {
				continue
			}
			serialized[jsonName] = true
			if !hasOmitempty {
				pass.Reportf(name.Pos(), "exported field %s.%s needs a json tag with omitempty: optional spec knobs must marshal away when zero so legacy canonical hashes stay stable (required always-present fields may carry //crlint:allow spechash <reason>)", typeName, name.Name)
			}
		}
	}

	listName := lowerFirst(typeName) + "HashFields"
	list, ok := lists[listName]
	if !ok {
		pass.Reportf(ts.Name.Pos(), "hash-canonicalized struct %s (//crlint:spechash) has no canonical-hash field list; declare package-level var %s = []string{...} naming every serialized field", typeName, listName)
		return
	}
	listed := map[string]bool{}
	for _, f := range list.fields {
		listed[f] = true
	}
	var missing, extra []string
	for f := range serialized {
		if !listed[f] {
			missing = append(missing, f)
		}
	}
	for f := range listed {
		if !serialized[f] {
			extra = append(extra, f)
		}
	}
	sort.Strings(missing)
	sort.Strings(extra)
	if len(missing) > 0 {
		pass.Reportf(list.pos, "canonical-hash field list %s does not name serialized field(s) %s of %s; every field that feeds the canonical hash must be listed", listName, quoteJoin(missing), typeName)
	}
	if len(extra) > 0 {
		pass.Reportf(list.pos, "canonical-hash field list %s names %s, which %s not serialized by %s; remove stale entries", listName, quoteJoin(extra), isAre(extra), typeName)
	}
}

// jsonTagInfo resolves a field's effective json name, whether its tag
// carries omitempty, and whether it is dropped from serialization entirely
// (json:"-").
func jsonTagInfo(tag *ast.BasicLit, goName string) (jsonName string, hasOmitempty, dropped bool) {
	jsonName = goName
	if tag == nil {
		return jsonName, false, false
	}
	raw, err := strconv.Unquote(tag.Value)
	if err != nil {
		return jsonName, false, false
	}
	jt, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return jsonName, false, false
	}
	parts := strings.Split(jt, ",")
	if parts[0] == "-" && len(parts) == 1 {
		return jsonName, false, true
	}
	if parts[0] != "" {
		jsonName = parts[0]
	}
	for _, p := range parts[1:] {
		if p == "omitempty" {
			hasOmitempty = true
		}
	}
	return jsonName, hasOmitempty, false
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}

func quoteJoin(names []string) string {
	quoted := make([]string, len(names))
	for i, n := range names {
		quoted[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(quoted, ", ")
}

func isAre(s []string) string {
	if len(s) == 1 {
		return "is"
	}
	return "are"
}
