package lint_test

import (
	"testing"

	"fadingcr/internal/lint"
	"fadingcr/internal/lint/linttest"
)

func TestXRandOnly(t *testing.T) {
	linttest.Run(t, lint.XRandOnly, "xrandonly")
}

// The seed-derivation layer itself is the one place allowed to construct raw
// math/rand/v2 generators.
func TestXRandOnlyExemptsXrandPackage(t *testing.T) {
	linttest.Run(t, lint.XRandOnly, "exempt/internal/xrand")
}

func TestNoWallClock(t *testing.T) {
	linttest.Run(t, lint.NoWallClock, "nowallclock")
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "maporder")
}

func TestSeedSplit(t *testing.T) {
	linttest.Run(t, lint.SeedSplit, "seedsplit")
}

func TestHotAlloc(t *testing.T) {
	linttest.Run(t, lint.HotAlloc, "hotalloc")
}

func TestPartWrite(t *testing.T) {
	linttest.Run(t, lint.PartWrite, "partwrite")
}

func TestFloatOrder(t *testing.T) {
	linttest.Run(t, lint.FloatOrder, "floatorder")
}

func TestSpecHash(t *testing.T) {
	linttest.Run(t, lint.SpecHash, "spechash")
}
