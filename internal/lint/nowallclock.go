package lint

import (
	"go/ast"
)

// wallClockFuncs are the time package entry points that read or depend on
// the wall clock (or the process' monotonic clock). time.Date, time.Unix,
// Duration arithmetic, and friends are pure and stay legal.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClock enforces the no-wall-clock contract: simulation logic
// (internal/sim, internal/sinr, internal/core, internal/hitting,
// internal/experiments, internal/baselines, ...) must be a pure function of
// its seed, so reruns are bit-identical. Reading the clock anywhere in
// non-test code is flagged — the time package's wall-clock entry points
// (Now, Since, Sleep, After/AfterFunc, Tick, NewTimer/NewTicker, ...) and
// the context deadline helpers (WithTimeout, WithDeadline, and their Cause
// variants), which arm a wall-clock timer behind a context. The legitimate
// timing sites — progress and elapsed-time reporting in cmd/ and
// internal/runner, request timeouts in the daemon — carry explicit
// //crlint:allow nowallclock directives so every exemption is visible and
// justified at the call site.
var NoWallClock = &Analyzer{
	Name:          "nowallclock",
	Doc:           "forbid time.Now/Since/Sleep, timer constructors, and context deadline helpers outside explicitly allowed timing sites",
	SkipTestFiles: true,
	Run:           nowallclock,
}

func nowallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn := pkgFunc(pass.TypesInfo, id)
			if fn == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "time" && wallClockFuncs[fn.Name()]:
				pass.Reportf(id.Pos(), "time.%s reads the wall clock, which breaks bit-identical reruns; simulation logic must be seed-deterministic (timing code may carry //crlint:allow nowallclock <reason>)", fn.Name())
			case fn.Pkg().Path() == "context" && contextDeadlineFuncs[fn.Name()]:
				pass.Reportf(id.Pos(), "context.%s arms a wall-clock deadline, which breaks bit-identical reruns; simulation logic must be seed-deterministic (timeout plumbing may carry //crlint:allow nowallclock <reason>)", fn.Name())
			}
			return true
		})
	}
	return nil
}
