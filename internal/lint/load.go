package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// ExportImporter returns a go/types importer that reads gc export data
// (the files `go list -export` and `go vet`'s vet.cfg point at). resolve
// maps an import path as written in source to the export file that
// satisfies it — the indirection lets drivers apply vendor/test-variant
// import maps. The standard library's gc importer handles the archive
// framing and the "unsafe" pseudo-package itself.
func ExportImporter(fset *token.FileSet, resolve func(path string) (string, error)) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, err := resolve(path)
		if err != nil {
			return nil, err
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// TypeCheck type-checks already-parsed files into an analysis-ready
// Package. goVersion may be empty or a "go1.N[.M]" string.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: normalizeGoVersion(goVersion),
	}
	tpkg, err := conf.Check(canonicalPath(path), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Fset: fset, Path: path, Files: files, Types: tpkg, Info: info}, nil
}

// canonicalPath strips the " [test-variant]" suffix go tooling appends to
// test compilation units; go/types rejects paths containing spaces as
// package paths in some contexts, and analyzers want the real path anyway.
func canonicalPath(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}

// normalizeGoVersion accepts "1.24", "go1.24", or "go1.24.0" and returns a
// form go/types accepts, or "" to mean the toolchain default.
func normalizeGoVersion(v string) string {
	if v == "" {
		return ""
	}
	if !strings.HasPrefix(v, "go") {
		v = "go" + v
	}
	return v
}
