package lint

import (
	"go/ast"
	"go/types"
)

// SeedSplit enforces the runner's seed-derivation contract (DESIGN.md §8):
// every generator gets its own seed, derived with xrand.Split. Two bug
// shapes are flagged, both of which silently correlate supposedly
// independent streams:
//
//  1. The same seed expression passed to more than one generator
//     construction (xrand.New, xrand.NewReseedable, Reseedable.Reseed) in
//     one function — the streams are identical, not independent.
//  2. A generator constructed inside a loop from a seed expression that
//     references nothing the loop varies — every iteration replays the
//     same stream. This is the exact bug class runner.TrialSeeds exists to
//     prevent.
//
// Matching is syntactic on the normalized seed expression, so a seed
// expression containing a call to anything other than xrand.Split/SplitN or
// a type conversion is conservatively treated as varying.
var SeedSplit = &Analyzer{
	Name:          "seedsplit",
	Doc:           "flag reuse of one seed expression across generator constructions, and loop-invariant seeds inside loops",
	SkipTestFiles: true,
	Run:           seedsplit,
}

// seedCall is one generator-constructing call and its seed argument.
type seedCall struct {
	call  *ast.CallExpr
	label string   // e.g. "xrand.New"
	seed  ast.Expr // first argument
	loops []ast.Stmt
}

func seedsplit(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSeeds(pass, fd)
		}
	}
	return nil
}

func checkSeeds(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	calls := collectSeedCalls(info, fd)

	// Shape 1: identical normalized seed expressions across distinct calls.
	seen := map[string]*seedCall{}
	for _, c := range calls {
		key := types.ExprString(c.seed)
		if first, ok := seen[key]; ok {
			pass.Reportf(c.call.Pos(),
				"seed expression %s is reused from the %s call on line %d; identical seeds yield identical streams — derive an independent child seed with xrand.Split",
				key, first.label, pass.Fset.Position(first.call.Pos()).Line)
			continue
		}
		seen[key] = c
	}

	// Shape 2: a seed expression invariant under an enclosing loop.
	varyCache := map[ast.Stmt]map[types.Object]bool{}
	for _, c := range calls {
		if len(c.loops) == 0 || impureSeed(info, c.seed) {
			continue
		}
		objs := exprObjs(info, c.seed)
		for _, loop := range c.loops {
			varying := varyCache[loop]
			if varying == nil {
				varying = varyingObjs(info, loop)
				varyCache[loop] = varying
			}
			invariant := true
			for obj := range objs {
				if varying[obj] {
					invariant = false
					break
				}
			}
			if invariant {
				pass.Reportf(c.call.Pos(),
					"seed %s does not vary across iterations of the enclosing loop (line %d): every iteration constructs an identical stream; derive per-iteration seeds with xrand.Split",
					types.ExprString(c.seed), pass.Fset.Position(loop.Pos()).Line)
				break
			}
		}
	}
}

// collectSeedCalls walks the function body recording generator
// constructions along with their enclosing loop statements, in source order.
// The walk keeps an explicit node stack (ast.Inspect reports subtree exit
// with a nil node) so each call knows the loops that enclose it.
func collectSeedCalls(info *types.Info, fd *ast.FuncDecl) []*seedCall {
	var calls []*seedCall
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if label := seedCallLabel(info, call); label != "" && len(call.Args) > 0 {
				// Innermost loop first, so the tightest replay is reported.
				var enclosing []ast.Stmt
				for i := len(stack) - 1; i >= 0; i-- {
					switch loop := stack[i].(type) {
					case *ast.ForStmt:
						enclosing = append(enclosing, loop)
					case *ast.RangeStmt:
						enclosing = append(enclosing, loop)
					}
				}
				calls = append(calls, &seedCall{call: call, label: label, seed: call.Args[0], loops: enclosing})
			}
		}
		stack = append(stack, n)
		return true
	})
	return calls
}

// seedCallLabel classifies a call as a generator construction: xrand.New,
// xrand.NewReseedable, or (*xrand.Reseedable).Reseed. Matching is by package
// name "xrand" so fixtures and scratch modules can supply their own stub.
func seedCallLabel(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if fn := pkgFunc(info, sel.Sel); fn != nil && fn.Pkg().Name() == "xrand" {
		if fn.Name() == "New" || fn.Name() == "NewReseedable" {
			return "xrand." + fn.Name()
		}
		return ""
	}
	if m := method(info, sel.Sel); m != nil && m.Name() == "Reseed" {
		if pkgPath, typeName := recvTypeName(m); typeName == "Reseedable" && pkgPath != "" {
			return "Reseedable.Reseed"
		}
	}
	return ""
}

// impureSeed reports whether the seed expression contains a call other than
// a type conversion or the pure xrand.Split/SplitN derivations — such a seed
// may legitimately vary per evaluation, so invariance cannot be decided
// syntactically.
func impureSeed(info *types.Info, seed ast.Expr) bool {
	impure := false
	ast.Inspect(seed, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return true // conversion: inspect its operand
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn := pkgFunc(info, sel.Sel); fn != nil && fn.Pkg().Name() == "xrand" &&
				(fn.Name() == "Split" || fn.Name() == "SplitN") {
				return true // pure derivation: inspect its arguments
			}
		}
		impure = true
		return false
	})
	return impure
}

// varyingObjs collects every object the loop plausibly changes between
// iterations: range key/value variables, for-clause variables, and anything
// assigned, incremented, or declared inside the loop (including the root of
// an assigned selector or index expression).
func varyingObjs(info *types.Info, loop ast.Stmt) map[types.Object]bool {
	varying := map[types.Object]bool{}
	note := func(e ast.Expr) {
		root := rootIdent(e)
		if root == nil {
			return
		}
		if obj := info.Defs[root]; obj != nil {
			varying[obj] = true
		}
		if obj := info.Uses[root]; obj != nil {
			varying[obj] = true
		}
	}
	if rs, ok := loop.(*ast.RangeStmt); ok {
		if rs.Key != nil {
			note(rs.Key)
		}
		if rs.Value != nil {
			note(rs.Value)
		}
	}
	ast.Inspect(loop, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(n.X)
		case *ast.ValueSpec:
			for _, name := range n.Names {
				note(name)
			}
		case *ast.RangeStmt:
			if n.Key != nil {
				note(n.Key)
			}
			if n.Value != nil {
				note(n.Value)
			}
		}
		return true
	})
	return varying
}
