package schedule

import (
	"testing"

	"fadingcr/internal/geom"
	"fadingcr/internal/sinr"
)

func testParams(r float64) sinr.Params {
	p := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	p.Power = sinr.MinSingleHopPower(p.Alpha, p.Beta, p.Noise, r, sinr.DefaultSingleHopMargin)
	return p
}

func TestNearestNeighborLinks(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 10, Y: 0}}
	links := NearestNeighborLinks(pts)
	if len(links) != 3 {
		t.Fatalf("got %d links, want 3", len(links))
	}
	if links[0] != (Link{Sender: 0, Receiver: 1}) || links[2] != (Link{Sender: 2, Receiver: 1}) {
		t.Errorf("links = %v", links)
	}
	if got := NearestNeighborLinks(pts[:1]); len(got) != 0 {
		t.Errorf("single node produced links %v", got)
	}
}

func TestFeasibleSingleLink(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	ok, err := Feasible(testParams(1), pts, []Link{{Sender: 0, Receiver: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("isolated single-hop link infeasible")
	}
}

func TestFeasibleRejectsStructuralConflicts(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2, Y: 0}}
	p := testParams(2)
	// Receiver also sends.
	ok, err := Feasible(p, pts, []Link{{Sender: 0, Receiver: 1}, {Sender: 1, Receiver: 2}})
	if err != nil || ok {
		t.Errorf("receiver-sends set judged feasible (ok=%v err=%v)", ok, err)
	}
	// Duplicate sender.
	ok, err = Feasible(p, pts, []Link{{Sender: 0, Receiver: 1}, {Sender: 0, Receiver: 2}})
	if err != nil || ok {
		t.Errorf("duplicate-sender set judged feasible (ok=%v err=%v)", ok, err)
	}
	// Out-of-range and self-loop surface errors.
	if _, err := Feasible(p, pts, []Link{{Sender: 0, Receiver: 9}}); err == nil {
		t.Error("out-of-range link accepted")
	}
	if _, err := Feasible(p, pts, []Link{{Sender: 1, Receiver: 1}}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := Feasible(sinr.Params{}, pts, nil); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestFeasibleInterferenceRejection(t *testing.T) {
	// Link b's sender sits half a unit from link a's receiver: its
	// interference (P/0.5³ = 8P) drowns a's unit-distance signal (P), so the
	// pair is infeasible together while each link alone is fine.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1.5, Y: 0}, {X: 2.5, Y: 0}}
	p := testParams(2.5)
	a := Link{Sender: 0, Receiver: 1}
	b := Link{Sender: 2, Receiver: 3}
	for _, solo := range [][]Link{{a}, {b}} {
		ok, err := Feasible(p, pts, solo)
		if err != nil || !ok {
			t.Fatalf("single link %v infeasible (ok=%v err=%v)", solo, ok, err)
		}
	}
	okBoth, err := Feasible(p, pts, []Link{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if okBoth {
		t.Error("interference-dominated pair judged feasible; interference model broken")
	}
}

func TestGreedyProducesFeasibleMaximalSet(t *testing.T) {
	d, err := geom.UniformDisk(5, 128)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(d.R)
	requests := NearestNeighborLinks(d.Points)
	chosen, err := Greedy(p, d.Points, requests)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) == 0 {
		t.Fatal("empty schedule")
	}
	ok, err := Feasible(p, d.Points, chosen)
	if err != nil || !ok {
		t.Fatalf("greedy schedule infeasible (ok=%v err=%v)", ok, err)
	}
	// Maximality: every rejected request conflicts with the chosen set.
	inChosen := map[Link]bool{}
	for _, l := range chosen {
		inChosen[l] = true
	}
	for _, l := range requests {
		if inChosen[l] {
			continue
		}
		ok, err := Feasible(p, d.Points, append(append([]Link(nil), chosen...), l))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("rejected link %+v could have been added: schedule not maximal", l)
		}
	}
}

// TestSpatialReuseCapacityGrows is the conjecture's origin in one assertion:
// one-shot SINR capacity grows with n (the collision channel's is always 1).
func TestSpatialReuseCapacityGrows(t *testing.T) {
	capacity := func(n int) int {
		d, err := geom.UniformDisk(9, n)
		if err != nil {
			t.Fatal(err)
		}
		p := testParams(d.R)
		chosen, err := Greedy(p, d.Points, NearestNeighborLinks(d.Points))
		if err != nil {
			t.Fatal(err)
		}
		return len(chosen)
	}
	c32, c256 := capacity(32), capacity(256)
	if c32 < 2 {
		t.Errorf("capacity(32) = %d; expected spatial reuse beyond a single link", c32)
	}
	if c256 < 3*c32 {
		t.Errorf("capacity grew %d → %d from n=32 to n=256; expected ~linear growth", c32, c256)
	}
}

func TestScheduleAllServesEveryRequest(t *testing.T) {
	d, err := geom.UniformDisk(3, 64)
	if err != nil {
		t.Fatal(err)
	}
	p := testParams(d.R)
	requests := NearestNeighborLinks(d.Points)
	rounds, err := ScheduleAll(p, d.Points, requests)
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	for _, batch := range rounds {
		ok, err := Feasible(p, d.Points, batch)
		if err != nil || !ok {
			t.Fatalf("round infeasible (ok=%v err=%v)", ok, err)
		}
		served += len(batch)
	}
	if served != len(requests) {
		t.Errorf("served %d of %d requests", served, len(requests))
	}
	// With spatial reuse the schedule is far shorter than one-per-round.
	if len(rounds) >= len(requests) {
		t.Errorf("%d rounds for %d requests: no reuse at all", len(rounds), len(requests))
	}
}

func TestScheduleAllInfeasibleRequest(t *testing.T) {
	// A link longer than the power budget supports can never be scheduled.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1000, Y: 0}}
	p := testParams(1) // power budgeted for distance 1 only
	if _, err := ScheduleAll(p, pts, []Link{{Sender: 0, Receiver: 2}}); err == nil {
		t.Error("unschedulable request did not error")
	}
}

func TestGreedyValidation(t *testing.T) {
	if _, err := Greedy(sinr.Params{}, []geom.Point{{X: 0, Y: 0}}, nil); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Greedy(testParams(1), nil, nil); err == nil {
		t.Error("empty deployment accepted")
	}
}
