// Package schedule implements centralized one-shot SINR link scheduling in
// the style of Moscibroda and Wattenhofer — the line of work the paper
// credits with proving that fading channels admit *spatial reuse* ("spectrum
// reuse enabled by super-quadratic signal fading") and thereby originating
// the conjecture the paper resolves for distributed algorithms.
//
// The scheduler answers the capacity question directly: how many
// sender→receiver links can transmit simultaneously in one round such that
// every receiver decodes its own sender under the SINR equation? On a
// collision channel the answer is always 1; on a fading channel it grows
// linearly with n for constant-density deployments — which is exactly the
// headroom the paper's distributed algorithm exploits through knock-outs.
package schedule

import (
	"errors"
	"fmt"
	"sort"

	"fadingcr/internal/geom"
	"fadingcr/internal/sinr"
)

// Link is a directed transmission request.
type Link struct {
	// Sender and Receiver are node indices into the deployment.
	Sender, Receiver int
}

// NearestNeighborLinks returns the canonical request set used by capacity
// experiments: every node wants to transmit to its nearest neighbour.
func NearestNeighborLinks(pts []geom.Point) []Link {
	links := make([]Link, 0, len(pts))
	for u := range pts {
		v, _ := geom.NearestNeighbor(pts, u)
		if v >= 0 {
			links = append(links, Link{Sender: u, Receiver: v})
		}
	}
	return links
}

// Feasible reports whether every link of the set is decoded when all the
// set's senders transmit simultaneously: for each link, the receiver must
// not itself be a sender, and the sender's SINR at the receiver must clear
// β against the other senders' interference plus noise.
func Feasible(params sinr.Params, pts []geom.Point, links []Link) (bool, error) {
	if err := params.Validate(); err != nil {
		return false, err
	}
	sending := make(map[int]bool, len(links))
	for _, l := range links {
		if l.Sender < 0 || l.Sender >= len(pts) || l.Receiver < 0 || l.Receiver >= len(pts) {
			return false, fmt.Errorf("schedule: link %+v outside deployment of %d nodes", l, len(pts))
		}
		if l.Sender == l.Receiver {
			return false, fmt.Errorf("schedule: link %+v is a self-loop", l)
		}
		if sending[l.Sender] {
			return false, nil // a sender can serve at most one link per round
		}
		sending[l.Sender] = true
	}
	// Sum interference in ascending sender order: float addition is not
	// associative, so iterating the map directly would make marginal links
	// flip between runs (caught by crlint's maporder analyzer).
	senders := make([]int, 0, len(sending))
	for s := range sending {
		senders = append(senders, s)
	}
	sort.Ints(senders)
	for _, l := range links {
		if sending[l.Receiver] {
			return false, nil // a receiver cannot also transmit
		}
		signal := params.Signal(pts[l.Sender].Dist(pts[l.Receiver]))
		interference := 0.0
		for _, s := range senders {
			if s == l.Sender {
				continue
			}
			interference += params.Signal(pts[s].Dist(pts[l.Receiver]))
		}
		if params.SINR(signal, interference) < params.Beta {
			return false, nil
		}
	}
	return true, nil
}

// Greedy builds a feasible simultaneous transmission set greedily: requests
// are considered in ascending link-length order (short links are the easiest
// to protect, the standard heuristic of the capacity literature), and each
// is added if the set stays feasible. The result is maximal: no rejected
// link can be added afterwards. Complexity O(k²·k) for k requests.
func Greedy(params sinr.Params, pts []geom.Point, requests []Link) ([]Link, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, errors.New("schedule: empty deployment")
	}
	ordered := append([]Link(nil), requests...)
	sort.SliceStable(ordered, func(i, j int) bool {
		di := pts[ordered[i].Sender].Dist2(pts[ordered[i].Receiver])
		dj := pts[ordered[j].Sender].Dist2(pts[ordered[j].Receiver])
		return di < dj
	})
	var chosen []Link
	for _, l := range ordered {
		candidate := append(chosen, l)
		ok, err := Feasible(params, pts, candidate)
		if err != nil {
			return nil, err
		}
		if ok {
			chosen = candidate
		}
	}
	return chosen, nil
}

// ScheduleAll partitions the requests into consecutive feasible rounds by
// repeatedly applying Greedy — the one-shot capacity iterated until every
// link has been served. It returns the per-round link sets. Requests that
// can never be feasible alone (e.g. violating the SINR threshold even with
// no interference) surface as an error rather than an infinite loop.
func ScheduleAll(params sinr.Params, pts []geom.Point, requests []Link) ([][]Link, error) {
	remaining := append([]Link(nil), requests...)
	var rounds [][]Link
	for len(remaining) > 0 {
		batch, err := Greedy(params, pts, remaining)
		if err != nil {
			return nil, err
		}
		if len(batch) == 0 {
			return nil, fmt.Errorf("schedule: %d requests cannot be scheduled (infeasible even in isolation)", len(remaining))
		}
		rounds = append(rounds, batch)
		served := make(map[Link]bool, len(batch))
		for _, l := range batch {
			served[l] = true
		}
		next := remaining[:0]
		for _, l := range remaining {
			if !served[l] {
				next = append(next, l)
			}
		}
		remaining = next
	}
	return rounds, nil
}
