#!/usr/bin/env bash
# serve-smoke: end-to-end exercise of the crserve daemon. Boots the
# service, drives the whole client workflow over HTTP (submit → stream →
# result), proves that a result-cache hit serves bytes identical to the
# cold computation (the service-determinism contract, DESIGN.md §8),
# checks the health and metrics endpoints, and drains gracefully on
# SIGTERM. Shared by `make serve-smoke` and CI's serve-smoke job.
set -euo pipefail

if ! command -v jq >/dev/null 2>&1; then
  echo "serve-smoke: jq not installed, skipping" >&2
  exit 0
fi

ADDR="${CRSERVE_ADDR:-127.0.0.1:8344}"
OUT="${CRSERVE_OUT:-bin}"
mkdir -p "$OUT"

go build -o "$OUT/crserve" ./cmd/crserve
"$OUT/crserve" -h >/dev/null 2>&1 # help exits zero

"$OUT/crserve" -addr "$ADDR" -workers 2 2> "$OUT/crserve.log" &
PID=$!
trap 'kill -9 "$PID" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR/healthz" >/dev/null; then break; fi
  sleep 0.1
done
curl -sf "http://$ADDR/readyz" | grep -q ready

SPEC='{"sim":{"n":64,"deploy":"disk","algo":"fixed"},"seed":7,"trials":20}'
JOB=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$SPEC" | jq -r .id)
test -n "$JOB"

# The stream is valid NDJSON that opens with the job event and closes with
# the result event; reading it to EOF doubles as waiting for the job.
curl -sN "http://$ADDR/v1/jobs/$JOB/stream" > "$OUT/stream.ndjson"
jq -ce . "$OUT/stream.ndjson" >/dev/null
head -n 1 "$OUT/stream.ndjson" | jq -e '.event == "job"' >/dev/null
tail -n 1 "$OUT/stream.ndjson" | jq -e '.event == "result" and .state == "done"' >/dev/null

curl -sf "http://$ADDR/v1/jobs/$JOB/result" -o "$OUT/result-cold.json"
jq -e '.kind == "sim" and .trials == 20' "$OUT/result-cold.json" >/dev/null

# Resubmitting the same spec must hit the cache and serve bytes identical
# to the computed result.
WARM=$(curl -sf -X POST "http://$ADDR/v1/jobs" -d "$SPEC")
echo "$WARM" | jq -e '.state == "done" and .cached == true' >/dev/null
WARMID=$(echo "$WARM" | jq -r .id)
curl -sf "http://$ADDR/v1/jobs/$WARMID/result" -o "$OUT/result-warm.json"
cmp "$OUT/result-cold.json" "$OUT/result-warm.json"

curl -sf "http://$ADDR/metrics" > "$OUT/serve-metrics.ndjson"
jq -ce . "$OUT/serve-metrics.ndjson" >/dev/null
grep -q '"name":"serve.cache_hits","value":1' "$OUT/serve-metrics.ndjson"
grep -q '"name":"serve.jobs_done"' "$OUT/serve-metrics.ndjson"

kill -TERM "$PID"
wait "$PID" # graceful drain exits 0
trap - EXIT
grep -q '"event":"http"' "$OUT/crserve.log"
echo "serve-smoke OK"
