#!/usr/bin/env bash
# shard-smoke: end-to-end exercise of the distributed sharding stack. Proves
# the tentpole invariant on real binaries: a sharded run's stdout is
# byte-identical to the unsharded run — through `crbench -shards`, through
# `crshard` over two live crserve daemons, and through a run that loses one
# daemon midway and recovers by re-dispatching its shards to the survivor.
# Shared by `make shard-smoke` and CI's shard-smoke job.
set -euo pipefail

ADDR_A="${CRSHARD_ADDR_A:-127.0.0.1:8361}"
ADDR_B="${CRSHARD_ADDR_B:-127.0.0.1:8362}"
OUT="${CRSHARD_OUT:-bin}"
mkdir -p "$OUT"

go build -o "$OUT/crbench" ./cmd/crbench
go build -o "$OUT/crshard" ./cmd/crshard
go build -o "$OUT/crserve" ./cmd/crserve
"$OUT/crshard" -h >/dev/null 2>&1 # help exits zero

SPEC_ARGS=(-ids E1,E12 -quick -trials 2 -seed 7)

# 1. crbench -shards N is byte-identical to plain crbench.
"$OUT/crbench" "${SPEC_ARGS[@]}" -o "$OUT/shard-unsharded.txt" 2>/dev/null
"$OUT/crbench" "${SPEC_ARGS[@]}" -shards 3 -o "$OUT/shard-local3.txt" 2>/dev/null
cmp "$OUT/shard-unsharded.txt" "$OUT/shard-local3.txt"

# 2. crshard over two crserve daemons is byte-identical too.
"$OUT/crserve" -addr "$ADDR_A" -workers 2 2> "$OUT/crserve-a.log" &
PID_A=$!
"$OUT/crserve" -addr "$ADDR_B" -workers 2 2> "$OUT/crserve-b.log" &
PID_B=$!
trap 'kill -9 "$PID_A" "$PID_B" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR_A/healthz" >/dev/null &&
     curl -sf "http://$ADDR_B/healthz" >/dev/null; then break; fi
  sleep 0.1
done

"$OUT/crshard" "${SPEC_ARGS[@]}" -shards 4 \
  -endpoints "http://$ADDR_A,http://$ADDR_B" \
  -o "$OUT/shard-remote.txt" 2> "$OUT/crshard-remote.log"
cmp "$OUT/shard-unsharded.txt" "$OUT/shard-remote.txt"

# 3. Kill one daemon, then run against both endpoints: every shard the dead
# endpoint claims fails, the coordinator retries, gives up on that endpoint,
# and re-dispatches to the survivor — and the bytes still match. Killing
# before dispatch (rather than racing a kill against a sub-second run) makes
# the re-dispatch path deterministic.
kill -9 "$PID_B" 2>/dev/null || true
wait "$PID_B" 2>/dev/null || true
rm -f "$OUT/shard-killed.txt"
"$OUT/crshard" "${SPEC_ARGS[@]}" -shards 8 \
  -endpoints "http://$ADDR_A,http://$ADDR_B" \
  -retries 1 -backoff 50ms -shard-timeout 30s \
  -o "$OUT/shard-killed.txt" 2> "$OUT/crshard-killed.log"
cmp "$OUT/shard-unsharded.txt" "$OUT/shard-killed.txt"
# The dead endpoint was noticed and its shard recovered elsewhere. The
# coordinator's stderr is structured NDJSON, so the checks are jq-shaped.
grep -q '"msg":"gave up"' "$OUT/crshard-killed.log"
grep -q "\"msg\":\"shard done\".*\"executor\":\"http://$ADDR_A\"" "$OUT/crshard-killed.log"

kill -TERM "$PID_A" 2>/dev/null || true
wait "$PID_A" 2>/dev/null || true
trap - EXIT
echo "shard-smoke OK"
