#!/usr/bin/env bash
# fleet-obs-smoke: end-to-end exercise of fleet observability on real
# binaries. Proves the three contracts of the federated-observability layer:
# a sharded -trace-dir run over two crserve daemons reassembles a trace
# directory byte-identical to the unsharded capture (with stdout untouched),
# the coordinator span log is a well-formed timeline `crtrace spans` can
# summarise, and `crshard -metrics-fleet` merges the daemons' /metrics into
# one valid, sorted NDJSON snapshot. Shared by `make fleet-obs-smoke` and
# CI's fleet-obs-smoke job.
set -euo pipefail

ADDR_A="${CRFLEET_ADDR_A:-127.0.0.1:8371}"
ADDR_B="${CRFLEET_ADDR_B:-127.0.0.1:8372}"
OUT="${CRFLEET_OUT:-bin}"
mkdir -p "$OUT"

go build -o "$OUT/crbench" ./cmd/crbench
go build -o "$OUT/crshard" ./cmd/crshard
go build -o "$OUT/crserve" ./cmd/crserve
go build -o "$OUT/crtrace" ./cmd/crtrace

SPEC_ARGS=(-ids E1 -quick -trials 4 -seed 7)

# 1. Ground truth: unsharded crbench with local trace capture.
rm -rf "$OUT/fleet-traces-unsharded" "$OUT/fleet-traces-sharded"
"$OUT/crbench" "${SPEC_ARGS[@]}" -trace-dir "$OUT/fleet-traces-unsharded" \
  -trace-every 1 -o "$OUT/fleet-unsharded.txt" 2>/dev/null

"$OUT/crserve" -addr "$ADDR_A" -workers 2 2> "$OUT/crserve-fleet-a.log" &
PID_A=$!
"$OUT/crserve" -addr "$ADDR_B" -workers 2 2> "$OUT/crserve-fleet-b.log" &
PID_B=$!
trap 'kill -9 "$PID_A" "$PID_B" 2>/dev/null || true' EXIT

for _ in $(seq 1 100); do
  if curl -sf "http://$ADDR_A/healthz" >/dev/null &&
     curl -sf "http://$ADDR_B/healthz" >/dev/null; then break; fi
  sleep 0.1
done

# 2. Federated capture: a 3-shard run over both daemons must write a trace
# directory byte-identical to the unsharded one, file for file, and keep
# stdout byte-identical too.
"$OUT/crshard" "${SPEC_ARGS[@]}" -shards 3 \
  -endpoints "http://$ADDR_A,http://$ADDR_B" \
  -trace-dir "$OUT/fleet-traces-sharded" -trace-every 1 \
  -span-log "$OUT/fleet-spans.ndjson" \
  -o "$OUT/fleet-sharded.txt" 2> "$OUT/crshard-fleet.log"
cmp "$OUT/fleet-unsharded.txt" "$OUT/fleet-sharded.txt"

want=$(ls "$OUT/fleet-traces-unsharded" | wc -l)
got=$(ls "$OUT/fleet-traces-sharded" | wc -l)
test "$want" -gt 0
test "$want" -eq "$got"
for f in "$OUT/fleet-traces-unsharded"/*; do
  cmp "$f" "$OUT/fleet-traces-sharded/$(basename "$f")"
done
echo "trace federation byte-identical ($want files)"

# 3. The coordinator span log summarises cleanly: a run span covering every
# shard, all merged.
"$OUT/crtrace" spans "$OUT/fleet-spans.ndjson" > "$OUT/fleet-spans.txt"
grep -q 'shards=3' "$OUT/fleet-spans.txt"
grep -q 'outcome   all shards merged' "$OUT/fleet-spans.txt"

# 4. Fleet metrics: scrape both daemons' /metrics and merge. The snapshot
# must be valid NDJSON with the fleet header, strictly sorted metric names,
# and counters summed across sources (both daemons served HTTP requests).
"$OUT/crshard" -metrics-fleet -endpoints "http://$ADDR_A,http://$ADDR_B" \
  -o "$OUT/fleet-metrics.ndjson"
if command -v jq >/dev/null 2>&1; then
  jq -ce . "$OUT/fleet-metrics.ndjson" > /dev/null
  head -1 "$OUT/fleet-metrics.ndjson" |
    jq -e '.event == "fleet" and .schema == 1 and .sources == 2' > /dev/null
  jq -se '[.[1:][] | .name] | . == sort and length > 0' \
    "$OUT/fleet-metrics.ndjson" > /dev/null
  jq -se '[.[] | select(.event == "counter" and .name == "serve.jobs_done")]
          | length == 1 and .[0].value >= 3' "$OUT/fleet-metrics.ndjson" > /dev/null
  echo "fleet metrics snapshot valid"
else
  echo "jq not installed, skipping fleet metrics validation"
fi

kill -TERM "$PID_A" "$PID_B" 2>/dev/null || true
wait "$PID_A" 2>/dev/null || true
wait "$PID_B" 2>/dev/null || true
trap - EXIT
echo "fleet-obs-smoke OK"
