// Command crverify re-derives the reproduction's headline claims from
// scratch and prints PASS/FAIL per claim, exiting non-zero if any fails.
// It is the one-command answer to "does this reproduction actually hold on
// my machine?" — small sweeps (about a minute), fixed seeds, explicit
// evidence values for every verdict.
//
// Usage:
//
//	crverify            # run every check
//	crverify -seed 9    # different randomness, same claims
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"fadingcr/internal/baselines"
	"fadingcr/internal/cli"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/hitting"
	"fadingcr/internal/obs"
	"fadingcr/internal/radio"
	"fadingcr/internal/runner"
	"fadingcr/internal/schedule"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/stats"
	"fadingcr/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) (code int) {
	fs := flag.NewFlagSet("crverify", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "master seed")
	trials := fs.Int("trials", 15, "trials per estimated quantity")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines (results are identical at any value)")
	gaincache := fs.String("gaincache", "auto", "SINR gain-cache engine: auto|on|off (results are identical in every mode)")
	farfieldEps := fs.Float64("farfield-eps", 0, "ε far-field pruning for SINR delivery (0 = exact; ε > 0 trades a bounded one-sided reception error for speed)")
	sinrParallel := fs.Int("sinr-parallel", 0, "intra-round SINR Deliver workers (0/1 sequential; deterministic channels are identical at any value)")
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		if cli.IsHelp(err) {
			// -h/-help is a successful request for usage, not a parse error.
			return 0
		}
		return 2
	}
	sinrOpts, err := sinr.EngineOptions(*gaincache, *farfieldEps, *sinrParallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crverify:", err)
		return 2
	}
	finish, err := obsFlags.Start("crverify")
	if err != nil {
		// A profile file that cannot be created is a runtime failure, not
		// misuse: exit 1, like the other CLIs (2 is reserved for misuse).
		fmt.Fprintln(os.Stderr, "crverify:", err)
		return 1
	}
	defer func() {
		if ferr := finish(); ferr != nil {
			fmt.Fprintln(os.Stderr, "crverify:", ferr)
			if code == 0 {
				code = 1
			}
		}
	}()

	start := time.Now() //crlint:allow nowallclock CLI elapsed-time summary
	v := &verifier{seed: *seed, trials: *trials, parallel: *parallel, sinrOpts: sinrOpts}
	checks := []struct {
		id    string
		claim string
		check func(*verifier) (bool, string)
	}{
		{"V1", "Theorem 1: bounded per-doubling growth on the fading channel", checkScaling},
		{"V2", "Separation: the paper's algorithm beats the radio sweep at n=256", checkSeparation},
		{"V3", "Spatial reuse: the same algorithm stalls on the collision channel", checkSpatialReuse},
		{"V4", "Claim 1: interference at good nodes within the c_max bound", checkClaim1},
		{"V5", "Lemma 13: hitting-game horizon grows with log k", checkHitting},
		{"V6", "Lemma 14/Theorem 12: the m=2 embedding equals the two-player game", checkEmbedding},
		{"V7", "W.h.p.: zero failures at budget 8·log₂(n) for n=256", checkWhp},
		{"V8", "Mechanism: the knock-out rule accelerates even the sweep", checkMechanism},
		{"V9", "Spectrum reuse at the source: one-shot SINR capacity is a constant fraction of n", checkCapacity},
		{"V10", "Energy: the knock-out cascade needs less than one transmission per node", checkEnergy},
	}

	failures := 0
	for _, c := range checks {
		ok, evidence := c.check(v)
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %s  %s\n     evidence: %s\n", c.id, status, c.claim, evidence)
	}
	elapsed := time.Since(start).Round(time.Millisecond) //crlint:allow nowallclock CLI elapsed-time summary
	cache := sinr.ReadGainCacheStats()
	if failures > 0 {
		fmt.Printf("\n%d/%d checks failed in %v (parallelism %d, gain cache %s: %s)\n",
			failures, len(checks), elapsed, v.effectiveParallelism(), *gaincache, cache)
		return 1
	}
	fmt.Printf("\nall %d checks passed in %v (parallelism %d, gain cache %s: %s)\n",
		len(checks), elapsed, v.effectiveParallelism(), *gaincache, cache)
	return 0
}

type verifier struct {
	seed     uint64
	trials   int
	parallel int
	sinrOpts []sinr.Option // gain-cache engine options for every SINR channel
}

// channelFor builds the default single-hop channel with the verifier's
// gain-cache options applied.
func (v *verifier) channelFor(p sinr.Params, d *geom.Deployment) (*sinr.Channel, error) {
	return sinr.ChannelFor(p, d, v.sinrOpts...)
}

func (v *verifier) effectiveParallelism() int {
	if v.parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return v.parallel
}

// verifyOutcome is one execution's contribution to an estimated quantity.
type verifyOutcome struct {
	value  float64
	solved bool
}

// sample runs fn for every trial on the Monte Carlo engine and returns the
// values in trial order plus the unsolved count. Any error (including a
// recovered trial panic) aborts verification hard, like the sequential
// loops this replaced.
func (v *verifier) sample(trials int, fn func(trial int) (verifyOutcome, error)) ([]float64, int) {
	res, err := runner.Run(context.Background(), trials,
		func(_ context.Context, trial int) (verifyOutcome, error) { return fn(trial) },
		runner.Options[verifyOutcome]{Parallelism: v.parallel})
	if err != nil {
		panic(err)
	}
	if err := res.FirstErr(); err != nil {
		panic(err)
	}
	values := make([]float64, 0, trials)
	unsolved := 0
	for _, o := range res.Values {
		if !o.solved {
			unsolved++
		}
		values = append(values, o.value)
	}
	return values, unsolved
}

// medianRounds runs the builder on fresh uniform-disk SINR instances.
func (v *verifier) medianRounds(n int, b sim.Builder, budget int) (float64, int) {
	rounds, unsolved := v.sample(v.trials, func(trial int) (verifyOutcome, error) {
		d, err := geom.UniformDisk(xrand.Split(v.seed, uint64(trial)), n)
		if err != nil {
			return verifyOutcome{}, err
		}
		ch, err := v.channelFor(sinr.DefaultParams(), d)
		if err != nil {
			return verifyOutcome{}, err
		}
		res, err := sim.Run(ch, b, xrand.Split(v.seed, uint64(trial)+1<<20), sim.Config{MaxRounds: budget})
		if err != nil {
			return verifyOutcome{}, err
		}
		return verifyOutcome{value: float64(res.Rounds), solved: res.Solved}, nil
	})
	return stats.Median(rounds), unsolved
}

// medianRadio runs the builder on the collision channel.
func (v *verifier) medianRadio(n int, b sim.Builder, budget int, cd bool) (float64, int) {
	rounds, unsolved := v.sample(v.trials, func(trial int) (verifyOutcome, error) {
		ch, err := radio.New(n, cd)
		if err != nil {
			return verifyOutcome{}, err
		}
		res, err := sim.Run(ch, b, xrand.Split(v.seed, uint64(trial)+2<<20),
			sim.Config{MaxRounds: budget, CollisionDetection: cd})
		if err != nil {
			return verifyOutcome{}, err
		}
		return verifyOutcome{value: float64(res.Rounds), solved: res.Solved}, nil
	})
	return stats.Median(rounds), unsolved
}

func checkScaling(v *verifier) (bool, string) {
	m64, u1 := v.medianRounds(64, core.FixedProbability{}, 2000)
	m256, u2 := v.medianRounds(256, core.FixedProbability{}, 2000)
	m1024, u3 := v.medianRounds(1024, core.FixedProbability{}, 2000)
	d1, d2 := m256-m64, m1024-m256
	// Two doublings each; increments must stay bounded (≤ 6 rounds per
	// doubling-pair) and not explode between steps.
	ok := u1+u2+u3 == 0 && d1 <= 12 && d2 <= 12
	return ok, fmt.Sprintf("medians 64→256→1024: %.0f → %.0f → %.0f (Δ %.0f, %.0f), unsolved %d",
		m64, m256, m1024, d1, d2, u1+u2+u3)
}

func checkSeparation(v *verifier) (bool, string) {
	fading, u1 := v.medianRounds(256, core.FixedProbability{}, 2000)
	sweep, u2 := v.medianRadio(256, baselines.ProbabilitySweep{}, 20000, false)
	ok := u1+u2 == 0 && fading*2 <= sweep
	return ok, fmt.Sprintf("fading median %.0f vs radio sweep %.0f at n=256", fading, sweep)
}

func checkSpatialReuse(v *verifier) (bool, string) {
	sinrMed, u1 := v.medianRounds(64, core.FixedProbability{}, 2000)
	_, unsolved := v.medianRadio(64, core.FixedProbability{}, 20000, false)
	// On the collision channel at n=64 the solo probability is ~1e-5 per
	// round: most 20k-round trials must fail.
	ok := u1 == 0 && unsolved > v.trials/2
	return ok, fmt.Sprintf("SINR median %.0f rounds; collision channel %d/%d unsolved in 20000 rounds",
		sinrMed, unsolved, v.trials)
}

func checkClaim1(v *verifier) (bool, string) {
	d, err := geom.UniformDisk(v.seed, 300)
	if err != nil {
		panic(err)
	}
	const alpha, power = 3.0, 1.0
	active := make([]bool, d.N())
	for i := range active {
		active[i] = true
	}
	lc := geom.ComputeLinkClasses(d.Points, active)
	bound := core.CMax(alpha) + 1
	worstRatio := 0.0
	goodCount := 0
	for u := range d.Points {
		i := lc.Class[u]
		if i < 0 || !geom.IsGood(d.Points, active, u, i, alpha, geom.MaxAnnulusIndex(d.R, i)) {
			continue
		}
		goodCount++
		total := 0.0
		for w := range d.Points {
			if w != u {
				total += power * math.Pow(d.Points[u].Dist2(d.Points[w]), -alpha/2)
			}
		}
		limit := bound * power * math.Pow(2, -float64(i)*alpha)
		if r := total / limit; r > worstRatio {
			worstRatio = r
		}
	}
	ok := goodCount > 0 && worstRatio <= 1
	return ok, fmt.Sprintf("%d good nodes; worst interference/bound ratio %.3f (must be ≤ 1)", goodCount, worstRatio)
}

func checkHitting(v *verifier) (bool, string) {
	horizon := func(k int) float64 {
		rounds, _ := v.sample(4*k, func(trial int) (verifyOutcome, error) {
			ref, err := hitting.NewReferee(k, xrand.Split(v.seed, uint64(trial)))
			if err != nil {
				return verifyOutcome{}, err
			}
			p, err := hitting.NewFixedDensityPlayer(k, 0.5, xrand.Split(v.seed, uint64(trial)+3<<20))
			if err != nil {
				return verifyOutcome{}, err
			}
			r, won, err := hitting.Play(ref, p, 100000)
			if err != nil || !won {
				return verifyOutcome{}, fmt.Errorf("hitting trial failed: won=%v err=%v", won, err)
			}
			return verifyOutcome{value: float64(r), solved: true}, nil
		})
		sort.Float64s(rounds)
		return stats.Quantile(rounds, 1-1/float64(k))
	}
	h16, h256 := horizon(16), horizon(256)
	// log₂ 16 = 4, log₂ 256 = 8: the horizon should roughly double, and
	// never shrink or explode.
	ok := h256 > h16 && h256 < 4*h16
	return ok, fmt.Sprintf("(1−1/k) horizons: k=16 → %.1f, k=256 → %.1f (log₂ k: 4 → 8)", h16, h256)
}

func checkEmbedding(v *verifier) (bool, string) {
	const trials = 200
	// One engine pass yields the embedded rounds; the paired abstract
	// game shares the trial's protocol seed, so run both in the trial.
	type paired struct{ embedded, abstract float64 }
	res, err := runner.Run(context.Background(), trials, func(_ context.Context, trial int) (paired, error) {
		dseed := xrand.Split(v.seed, uint64(trial)*3)
		d, err := geom.UniformDisk(dseed, 128)
		if err != nil {
			return paired{}, err
		}
		idx, err := geom.RandomSubset(xrand.Split(v.seed, uint64(trial)*3+1), 128, 2)
		if err != nil {
			return paired{}, err
		}
		pair, err := d.Subset(idx)
		if err != nil {
			return paired{}, err
		}
		ch, err := v.channelFor(sinr.DefaultParams(), pair)
		if err != nil {
			return paired{}, err
		}
		pseed := xrand.Split(v.seed, uint64(trial)*3+2)
		r, err := sim.Run(ch, core.FixedProbability{}, pseed, sim.Config{MaxRounds: 100000})
		if err != nil || !r.Solved {
			return paired{}, fmt.Errorf("embedding trial %d failed", trial)
		}
		two, err := hitting.PlayTwoPlayer(core.FixedProbability{}, pseed, 100000)
		if err != nil || !two.Won {
			return paired{}, fmt.Errorf("two-player trial %d failed", trial)
		}
		return paired{embedded: float64(r.Rounds), abstract: float64(two.Rounds)}, nil
	}, runner.Options[paired]{Parallelism: v.parallel})
	if err != nil {
		panic(err)
	}
	if err := res.FirstErr(); err != nil {
		panic(err)
	}
	var embedded, abstract []float64
	for _, o := range res.Values {
		embedded = append(embedded, o.embedded)
		abstract = append(abstract, o.abstract)
	}
	d, err := stats.KolmogorovSmirnov(embedded, abstract)
	if err != nil {
		panic(err)
	}
	return d == 0, fmt.Sprintf("Kolmogorov–Smirnov D = %.4f over %d paired trials (0 = identical)", d, trials)
}

func checkWhp(v *verifier) (bool, string) {
	const n = 256
	budget := 8 * int(math.Ceil(math.Log2(n)))
	trials := 100
	_, unsolved := v.sample(trials, func(trial int) (verifyOutcome, error) {
		d, err := geom.UniformDisk(xrand.Split(v.seed, uint64(trial)+4<<20), n)
		if err != nil {
			return verifyOutcome{}, err
		}
		ch, err := v.channelFor(sinr.DefaultParams(), d)
		if err != nil {
			return verifyOutcome{}, err
		}
		res, err := sim.Run(ch, core.FixedProbability{}, xrand.Split(v.seed, uint64(trial)+5<<20),
			sim.Config{MaxRounds: budget})
		if err != nil {
			return verifyOutcome{}, err
		}
		return verifyOutcome{value: float64(res.Rounds), solved: res.Solved}, nil
	})
	return unsolved == 0, fmt.Sprintf("%d/%d failures within %d rounds at n=%d", unsolved, trials, budget, n)
}

func checkCapacity(v *verifier) (bool, string) {
	frac := func(n int) float64 {
		d, err := geom.UniformDisk(v.seed, n)
		if err != nil {
			panic(err)
		}
		params := sinr.DefaultParams()
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
		chosen, err := schedule.Greedy(params, d.Points, schedule.NearestNeighborLinks(d.Points))
		if err != nil {
			panic(err)
		}
		return float64(len(chosen)) / float64(n)
	}
	f64, f256 := frac(64), frac(256)
	ok := f64 > 0.1 && f256 > 0.1
	return ok, fmt.Sprintf("capacity/n: %.3f at n=64, %.3f at n=256 (collision channel: 1/n)", f64, f256)
}

func checkEnergy(v *verifier) (bool, string) {
	const n = 256
	perCap, _ := v.sample(v.trials, func(trial int) (verifyOutcome, error) {
		d, err := geom.UniformDisk(xrand.Split(v.seed, uint64(trial)+6<<20), n)
		if err != nil {
			return verifyOutcome{}, err
		}
		ch, err := v.channelFor(sinr.DefaultParams(), d)
		if err != nil {
			return verifyOutcome{}, err
		}
		res, err := sim.Run(ch, core.FixedProbability{}, xrand.Split(v.seed, uint64(trial)+7<<20),
			sim.Config{MaxRounds: 2000})
		if err != nil || !res.Solved {
			return verifyOutcome{}, fmt.Errorf("energy trial %d failed", trial)
		}
		return verifyOutcome{value: float64(res.Transmissions) / float64(n), solved: true}, nil
	})
	med := stats.Median(perCap)
	return med < 1.5, fmt.Sprintf("median transmissions per node %.2f at n=%d (oblivious radio strategies: several)", med, n)
}

func checkMechanism(v *verifier) (bool, string) {
	plain, u1 := v.medianRounds(256, baselines.ProbabilitySweep{}, 100000)
	knocked, u2 := v.medianRounds(256, core.WithKnockout{Inner: baselines.ProbabilitySweep{}}, 100000)
	ok := u1+u2 == 0 && knocked < plain
	return ok, fmt.Sprintf("sweep median %.0f vs knockout(sweep) %.0f at n=256 on SINR", plain, knocked)
}
