// Command crverify re-derives the reproduction's headline claims from
// scratch and prints PASS/FAIL per claim, exiting non-zero if any fails.
// It is the one-command answer to "does this reproduction actually hold on
// my machine?" — small sweeps (about a minute), fixed seeds, explicit
// evidence values for every verdict.
//
// Usage:
//
//	crverify            # run every check
//	crverify -seed 9    # different randomness, same claims
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/hitting"
	"fadingcr/internal/radio"
	"fadingcr/internal/schedule"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/stats"
	"fadingcr/internal/xrand"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("crverify", flag.ContinueOnError)
	seed := fs.Uint64("seed", 7, "master seed")
	trials := fs.Int("trials", 15, "trials per estimated quantity")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	v := &verifier{seed: *seed, trials: *trials}
	checks := []struct {
		id    string
		claim string
		check func(*verifier) (bool, string)
	}{
		{"V1", "Theorem 1: bounded per-doubling growth on the fading channel", checkScaling},
		{"V2", "Separation: the paper's algorithm beats the radio sweep at n=256", checkSeparation},
		{"V3", "Spatial reuse: the same algorithm stalls on the collision channel", checkSpatialReuse},
		{"V4", "Claim 1: interference at good nodes within the c_max bound", checkClaim1},
		{"V5", "Lemma 13: hitting-game horizon grows with log k", checkHitting},
		{"V6", "Lemma 14/Theorem 12: the m=2 embedding equals the two-player game", checkEmbedding},
		{"V7", "W.h.p.: zero failures at budget 8·log₂(n) for n=256", checkWhp},
		{"V8", "Mechanism: the knock-out rule accelerates even the sweep", checkMechanism},
		{"V9", "Spectrum reuse at the source: one-shot SINR capacity is a constant fraction of n", checkCapacity},
		{"V10", "Energy: the knock-out cascade needs less than one transmission per node", checkEnergy},
	}

	failures := 0
	for _, c := range checks {
		ok, evidence := c.check(v)
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Printf("%-4s %s  %s\n     evidence: %s\n", c.id, status, c.claim, evidence)
	}
	if failures > 0 {
		fmt.Printf("\n%d/%d checks failed\n", failures, len(checks))
		return 1
	}
	fmt.Printf("\nall %d checks passed\n", len(checks))
	return 0
}

type verifier struct {
	seed   uint64
	trials int
}

// medianRounds runs the builder on fresh uniform-disk SINR instances.
func (v *verifier) medianRounds(n int, b sim.Builder, budget int) (float64, int) {
	var rounds []float64
	unsolved := 0
	for trial := 0; trial < v.trials; trial++ {
		d, err := geom.UniformDisk(xrand.Split(v.seed, uint64(trial)), n)
		if err != nil {
			panic(err)
		}
		params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
		ch, err := sinr.New(params, d.Points)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(ch, b, xrand.Split(v.seed, uint64(trial)+1<<20), sim.Config{MaxRounds: budget})
		if err != nil {
			panic(err)
		}
		if !res.Solved {
			unsolved++
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	return stats.Median(rounds), unsolved
}

// medianRadio runs the builder on the collision channel.
func (v *verifier) medianRadio(n int, b sim.Builder, budget int, cd bool) (float64, int) {
	var rounds []float64
	unsolved := 0
	for trial := 0; trial < v.trials; trial++ {
		ch, err := radio.New(n, cd)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(ch, b, xrand.Split(v.seed, uint64(trial)+2<<20),
			sim.Config{MaxRounds: budget, CollisionDetection: cd})
		if err != nil {
			panic(err)
		}
		if !res.Solved {
			unsolved++
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	return stats.Median(rounds), unsolved
}

func checkScaling(v *verifier) (bool, string) {
	m64, u1 := v.medianRounds(64, core.FixedProbability{}, 2000)
	m256, u2 := v.medianRounds(256, core.FixedProbability{}, 2000)
	m1024, u3 := v.medianRounds(1024, core.FixedProbability{}, 2000)
	d1, d2 := m256-m64, m1024-m256
	// Two doublings each; increments must stay bounded (≤ 6 rounds per
	// doubling-pair) and not explode between steps.
	ok := u1+u2+u3 == 0 && d1 <= 12 && d2 <= 12
	return ok, fmt.Sprintf("medians 64→256→1024: %.0f → %.0f → %.0f (Δ %.0f, %.0f), unsolved %d",
		m64, m256, m1024, d1, d2, u1+u2+u3)
}

func checkSeparation(v *verifier) (bool, string) {
	fading, u1 := v.medianRounds(256, core.FixedProbability{}, 2000)
	sweep, u2 := v.medianRadio(256, baselines.ProbabilitySweep{}, 20000, false)
	ok := u1+u2 == 0 && fading*2 <= sweep
	return ok, fmt.Sprintf("fading median %.0f vs radio sweep %.0f at n=256", fading, sweep)
}

func checkSpatialReuse(v *verifier) (bool, string) {
	sinrMed, u1 := v.medianRounds(64, core.FixedProbability{}, 2000)
	_, unsolved := v.medianRadio(64, core.FixedProbability{}, 20000, false)
	// On the collision channel at n=64 the solo probability is ~1e-5 per
	// round: most 20k-round trials must fail.
	ok := u1 == 0 && unsolved > v.trials/2
	return ok, fmt.Sprintf("SINR median %.0f rounds; collision channel %d/%d unsolved in 20000 rounds",
		sinrMed, unsolved, v.trials)
}

func checkClaim1(v *verifier) (bool, string) {
	d, err := geom.UniformDisk(v.seed, 300)
	if err != nil {
		panic(err)
	}
	const alpha, power = 3.0, 1.0
	active := make([]bool, d.N())
	for i := range active {
		active[i] = true
	}
	lc := geom.ComputeLinkClasses(d.Points, active)
	bound := core.CMax(alpha) + 1
	worstRatio := 0.0
	goodCount := 0
	for u := range d.Points {
		i := lc.Class[u]
		if i < 0 || !geom.IsGood(d.Points, active, u, i, alpha, geom.MaxAnnulusIndex(d.R, i)) {
			continue
		}
		goodCount++
		total := 0.0
		for w := range d.Points {
			if w != u {
				total += power * math.Pow(d.Points[u].Dist2(d.Points[w]), -alpha/2)
			}
		}
		limit := bound * power * math.Pow(2, -float64(i)*alpha)
		if r := total / limit; r > worstRatio {
			worstRatio = r
		}
	}
	ok := goodCount > 0 && worstRatio <= 1
	return ok, fmt.Sprintf("%d good nodes; worst interference/bound ratio %.3f (must be ≤ 1)", goodCount, worstRatio)
}

func checkHitting(v *verifier) (bool, string) {
	horizon := func(k int) float64 {
		trials := 4 * k
		var rounds []float64
		for trial := 0; trial < trials; trial++ {
			ref, err := hitting.NewReferee(k, xrand.Split(v.seed, uint64(trial)))
			if err != nil {
				panic(err)
			}
			p, err := hitting.NewFixedDensityPlayer(k, 0.5, xrand.Split(v.seed, uint64(trial)+3<<20))
			if err != nil {
				panic(err)
			}
			r, won, err := hitting.Play(ref, p, 100000)
			if err != nil || !won {
				panic(fmt.Sprintf("hitting trial failed: won=%v err=%v", won, err))
			}
			rounds = append(rounds, float64(r))
		}
		sort.Float64s(rounds)
		return stats.Quantile(rounds, 1-1/float64(k))
	}
	h16, h256 := horizon(16), horizon(256)
	// log₂ 16 = 4, log₂ 256 = 8: the horizon should roughly double, and
	// never shrink or explode.
	ok := h256 > h16 && h256 < 4*h16
	return ok, fmt.Sprintf("(1−1/k) horizons: k=16 → %.1f, k=256 → %.1f (log₂ k: 4 → 8)", h16, h256)
}

func checkEmbedding(v *verifier) (bool, string) {
	const trials = 200
	var embedded, abstract []float64
	for trial := 0; trial < trials; trial++ {
		dseed := xrand.Split(v.seed, uint64(trial)*3)
		d, err := geom.UniformDisk(dseed, 128)
		if err != nil {
			panic(err)
		}
		idx, err := geom.RandomSubset(xrand.Split(v.seed, uint64(trial)*3+1), 128, 2)
		if err != nil {
			panic(err)
		}
		pair, err := d.Subset(idx)
		if err != nil {
			panic(err)
		}
		params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, pair.R, sinr.DefaultSingleHopMargin)
		ch, err := sinr.New(params, pair.Points)
		if err != nil {
			panic(err)
		}
		pseed := xrand.Split(v.seed, uint64(trial)*3+2)
		res, err := sim.Run(ch, core.FixedProbability{}, pseed, sim.Config{MaxRounds: 100000})
		if err != nil || !res.Solved {
			panic("embedding trial failed")
		}
		embedded = append(embedded, float64(res.Rounds))
		two, err := hitting.PlayTwoPlayer(core.FixedProbability{}, pseed, 100000)
		if err != nil || !two.Won {
			panic("two-player trial failed")
		}
		abstract = append(abstract, float64(two.Rounds))
	}
	d, err := stats.KolmogorovSmirnov(embedded, abstract)
	if err != nil {
		panic(err)
	}
	return d == 0, fmt.Sprintf("Kolmogorov–Smirnov D = %.4f over %d paired trials (0 = identical)", d, trials)
}

func checkWhp(v *verifier) (bool, string) {
	const n = 256
	budget := 8 * int(math.Ceil(math.Log2(n)))
	trials := 100
	unsolved := 0
	for trial := 0; trial < trials; trial++ {
		d, err := geom.UniformDisk(xrand.Split(v.seed, uint64(trial)+4<<20), n)
		if err != nil {
			panic(err)
		}
		params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
		ch, err := sinr.New(params, d.Points)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(ch, core.FixedProbability{}, xrand.Split(v.seed, uint64(trial)+5<<20),
			sim.Config{MaxRounds: budget})
		if err != nil {
			panic(err)
		}
		if !res.Solved {
			unsolved++
		}
	}
	return unsolved == 0, fmt.Sprintf("%d/%d failures within %d rounds at n=%d", unsolved, trials, budget, n)
}

func checkCapacity(v *verifier) (bool, string) {
	frac := func(n int) float64 {
		d, err := geom.UniformDisk(v.seed, n)
		if err != nil {
			panic(err)
		}
		params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
		chosen, err := schedule.Greedy(params, d.Points, schedule.NearestNeighborLinks(d.Points))
		if err != nil {
			panic(err)
		}
		return float64(len(chosen)) / float64(n)
	}
	f64, f256 := frac(64), frac(256)
	ok := f64 > 0.1 && f256 > 0.1
	return ok, fmt.Sprintf("capacity/n: %.3f at n=64, %.3f at n=256 (collision channel: 1/n)", f64, f256)
}

func checkEnergy(v *verifier) (bool, string) {
	const n = 256
	var perCap []float64
	for trial := 0; trial < v.trials; trial++ {
		d, err := geom.UniformDisk(xrand.Split(v.seed, uint64(trial)+6<<20), n)
		if err != nil {
			panic(err)
		}
		params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
		params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
		ch, err := sinr.New(params, d.Points)
		if err != nil {
			panic(err)
		}
		res, err := sim.Run(ch, core.FixedProbability{}, xrand.Split(v.seed, uint64(trial)+7<<20),
			sim.Config{MaxRounds: 2000})
		if err != nil || !res.Solved {
			panic("energy trial failed")
		}
		perCap = append(perCap, float64(res.Transmissions)/float64(n))
	}
	med := stats.Median(perCap)
	return med < 1.5, fmt.Sprintf("median transmissions per node %.2f at n=%d (oblivious radio strategies: several)", med, n)
}

func checkMechanism(v *verifier) (bool, string) {
	plain, u1 := v.medianRounds(256, baselines.ProbabilitySweep{}, 100000)
	knocked, u2 := v.medianRounds(256, core.WithKnockout{Inner: baselines.ProbabilitySweep{}}, 100000)
	ok := u1+u2 == 0 && knocked < plain
	return ok, fmt.Sprintf("sweep median %.0f vs knockout(sweep) %.0f at n=256 on SINR", plain, knocked)
}
