package main

import "testing"

func TestRunAllChecksPass(t *testing.T) {
	if code := run([]string{"-seed", "7", "-trials", "10"}); code != 0 {
		t.Fatalf("crverify exited %d, want 0", code)
	}
}

func TestRunOtherSeedAlsoPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if code := run([]string{"-seed", "99", "-trials", "10"}); code != 0 {
		t.Fatalf("crverify with seed 99 exited %d, want 0", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}

func TestRunExitCodes(t *testing.T) {
	// crverify reserves 2 for misuse; -h/-help asks for usage and must
	// exit 0 (it used to return 2 via the parse-error path).
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help short", []string{"-h"}, 0},
		{"help long", []string{"-help"}, 0},
		{"bad flag", []string{"-nope"}, 2},
		{"bad gaincache", []string{"-gaincache", "sometimes"}, 2},
	}
	for _, tc := range cases {
		if got := run(tc.args); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}
