package main

import "testing"

func TestRunAllChecksPass(t *testing.T) {
	if code := run([]string{"-seed", "7", "-trials", "10"}); code != 0 {
		t.Fatalf("crverify exited %d, want 0", code)
	}
}

func TestRunOtherSeedAlsoPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	if code := run([]string{"-seed", "99", "-trials", "10"}); code != 0 {
		t.Fatalf("crverify with seed 99 exited %d, want 0", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-nope"}); code != 2 {
		t.Fatalf("bad flag exited %d, want 2", code)
	}
}
