// Command crshard coordinates a distributed experiment run: it splits every
// trial loop into -shards contiguous trial ranges, fans the shards out to
// local workers and/or remote crserve daemons, merges the shard results, and
// re-renders the experiment tables — byte-identical to an unsharded crbench
// run of the same spec, at any shard count, worker count, or endpoint mix.
//
// Usage:
//
//	crshard -ids E1,E12 -quick -shards 8                  # local workers
//	crshard -shards 16 -endpoints http://a:8080,http://b:8080
//	crshard -shards 8 -checkpoint-dir ckpt                # resumable
//	crshard -shards 8 -checkpoint-dir ckpt -resume        # pick up a run
//
// Per-shard results are checkpointed to -checkpoint-dir as they complete;
// -resume loads matching checkpoints instead of recomputing those shards.
// A run that lost some shards (daemon down, timeout budget exhausted) exits
// nonzero listing the failed shards; rerunning with -resume completes just
// the missing ones.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"fadingcr/internal/cli"
	"fadingcr/internal/experiments"
	"fadingcr/internal/obs"
	"fadingcr/internal/shard"
)

func main() {
	os.Exit(mainExitCode(os.Args[1:]))
}

// mainExitCode runs the command and maps its error to the process exit
// status (help is a success; see internal/cli), keeping main testable.
func mainExitCode(args []string) int {
	err := run(args, os.Stdout)
	if err != nil && !cli.IsHelp(err) {
		fmt.Fprintln(os.Stderr, "crshard:", err)
	}
	return cli.ExitCode(err)
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("crshard", flag.ContinueOnError)
	var (
		ids          = fs.String("ids", "all", "comma-separated experiment ids (e.g. E1,E3) or 'all'")
		quick        = fs.Bool("quick", false, "small sweeps for a fast smoke run")
		seed         = fs.Uint64("seed", 1, "master seed")
		trials       = fs.Int("trials", 0, "trials per data point (0 = experiment default)")
		format       = fs.String("format", "text", "output format: text|markdown")
		out          = fs.String("o", "", "write output to this file instead of stdout")
		gaincache    = fs.String("gaincache", "auto", "SINR gain-cache engine: auto|on|off (results are identical in every mode)")
		farfieldEps  = fs.Float64("farfield-eps", 0, "ε far-field pruning for SINR delivery (0 = exact)")
		sinrParallel = fs.Int("sinr-parallel", 0, "intra-round SINR Deliver workers (0/1 sequential)")

		shards    = fs.Int("shards", 2, "number of contiguous trial-range shards per trial loop")
		workers   = fs.Int("workers", 0, "local worker executors (0 = 1 when no endpoints are given, else 0)")
		endpoints = fs.String("endpoints", "", "comma-separated crserve base URLs to dispatch shards to (e.g. http://127.0.0.1:8080)")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "goroutines per local worker's trial loop (results are identical at any value)")

		checkpointDir = fs.String("checkpoint-dir", "", "write per-shard result checkpoints into this directory")
		resume        = fs.Bool("resume", false, "load matching checkpoints from -checkpoint-dir instead of recomputing those shards")

		shardTimeout = fs.Duration("shard-timeout", 0, "per-attempt wall-clock budget for one shard (0 = none)")
		retries      = fs.Int("retries", 2, "re-attempts per executor per shard after a failure")
		backoff      = fs.Duration("backoff", 200*time.Millisecond, "base delay between a shard's retry attempts (doubles per attempt)")
		timeout      = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")

		spanLog       = fs.String("span-log", "", "write coordinator scheduling spans (NDJSON) to this file (analyse with crtrace spans)")
		metricsFleet  = fs.Bool("metrics-fleet", false, "scrape every -endpoints daemon's /metrics, print one merged NDJSON snapshot, and exit (no experiments run)")
		traceDir      = fs.String("trace-dir", "", "federate the shards' per-trial structured traces into this directory (byte-identical to an unsharded crbench -trace-dir capture)")
		traceFmt      = fs.String("trace-format", "ndjson", "structured trace format: ndjson|binary")
		traceEvery    = fs.Int("trace-every", 100, "trace every Kth trial of each trial loop (global trial indices)")
		traceFailures = fs.Bool("trace-failures", false, "keep only unsolved trials' traces")
		traceClasses  = fs.Bool("trace-classes", false, "include per-round link-class censuses in traces")
	)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	if *format != "text" && *format != "markdown" {
		return cli.Usagef("unknown format %q", *format)
	}
	if *resume && *checkpointDir == "" {
		return cli.Usagef("-resume requires -checkpoint-dir")
	}

	var urls []string
	if *endpoints != "" {
		for _, u := range strings.Split(*endpoints, ",") {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u == "" {
				continue
			}
			urls = append(urls, u)
		}
	}

	if *metricsFleet {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout) //crlint:allow nowallclock CLI -timeout flag bounds wall time only
			defer cancel()
		}
		w := stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		return runMetricsFleet(ctx, urls, w)
	}

	req := shard.Request{
		Spec: experiments.Spec{
			IDs:          *ids,
			Seed:         *seed,
			Trials:       *trials,
			Quick:        *quick,
			GainCache:    *gaincache,
			FarFieldEps:  *farfieldEps,
			SINRParallel: *sinrParallel,
		},
		Shards: *shards,
	}
	if *traceDir != "" {
		req.Trace = &shard.TraceSpec{
			Format:   *traceFmt,
			EveryK:   *traceEvery,
			Failures: *traceFailures,
			Classes:  *traceClasses,
		}
	}
	if err := req.Validate(); err != nil {
		return cli.Usage(err)
	}

	var execs []shard.Executor
	for _, u := range urls {
		execs = append(execs, &shard.Endpoint{URL: u})
	}
	nWorkers := *workers
	if nWorkers == 0 && len(execs) == 0 {
		nWorkers = 1 // a bare `crshard` still runs, on one local worker
	}
	if nWorkers < 0 {
		return cli.Usagef("-workers must be >= 0 (got %d)", nWorkers)
	}
	for i := 0; i < nWorkers; i++ {
		execs = append(execs, &shard.Local{ID: fmt.Sprintf("local-%d", i), Parallelism: *parallel})
	}
	if len(execs) == 0 {
		return cli.Usagef("no executors: give -workers > 0 or -endpoints")
	}

	coord := shard.Coordinator{
		Executors:    execs,
		Retries:      *retries,
		Backoff:      *backoff,
		ShardTimeout: *shardTimeout,
		Log:          os.Stderr,
	}
	if *checkpointDir != "" {
		coord.Checkpoints = &shard.CheckpointDir{Dir: *checkpointDir}
		coord.Resume = *resume
	}
	if *spanLog != "" {
		f, err := os.Create(*spanLog)
		if err != nil {
			return err
		}
		defer f.Close()
		coord.Spans = obs.NewSpanLog(f)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout) //crlint:allow nowallclock CLI -timeout flag bounds wall time only
		defer cancel()
	}

	runStart := time.Now() //crlint:allow nowallclock CLI elapsed-time summary
	merged, err := coord.Run(ctx, req)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := shard.Assemble(ctx, w, req, merged, *format == "markdown"); err != nil {
		return err
	}
	if *traceDir != "" {
		n, err := merged.WriteTraceDir(*traceDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "crshard: %d trace files federated from %d shard(s) into %s\n", n, *shards, *traceDir)
	}
	if coord.Spans != nil {
		if serr := coord.Spans.Err(); serr != nil {
			return fmt.Errorf("span log: %w", serr)
		}
	}
	fmt.Fprintf(os.Stderr, "crshard: %d shard(s) over %d executor(s) in %v (aggregate hash %s)\n",
		*shards, len(execs), time.Since(runStart).Round(time.Millisecond), //crlint:allow nowallclock CLI elapsed-time summary
		merged.Hash())
	return nil
}

// runMetricsFleet is the -metrics-fleet mode: scrape every endpoint's
// /metrics, merge the snapshots deterministically (union of names sorted;
// counters sum, gauges take the last endpoint's value in flag order,
// histograms merge bucket-wise and recompute quantiles), and emit one
// combined NDJSON snapshot under a fleet header.
func runMetricsFleet(ctx context.Context, urls []string, w io.Writer) error {
	if len(urls) == 0 {
		return cli.Usagef("-metrics-fleet requires -endpoints")
	}
	sources := make([][]obs.MetricSnapshot, 0, len(urls))
	for _, u := range urls {
		snaps, err := obs.ScrapeMetrics(ctx, nil, u)
		if err != nil {
			return err
		}
		sources = append(sources, snaps)
	}
	merged, err := obs.MergeSnapshots(sources...)
	if err != nil {
		return err
	}
	sink := obs.NewSink(w)
	if err := sink.Emit("fleet",
		obs.F("schema", obs.FleetSchemaVersion), obs.F("sources", len(urls))); err != nil {
		return err
	}
	return obs.EmitSnapshots(sink, merged)
}
