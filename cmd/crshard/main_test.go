package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunLocalWorkers(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-seed", "9", "-shards", "3", "-workers", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"==== E5", "Claim:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunCheckpointThenResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-ids", "E5", "-quick", "-trials", "2", "-seed", "9", "-shards", "3", "-checkpoint-dir", dir}
	var first strings.Builder
	if err := run(args, &first); err != nil {
		t.Fatal(err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "shard-*.ndjson")); len(files) != 3 {
		t.Fatalf("checkpoint dir holds %d files, want 3", len(files))
	}
	var resumed strings.Builder
	if err := run(append(args, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	if first.String() != resumed.String() {
		t.Error("resumed output differs from the original run")
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var out strings.Builder
	if err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-shards", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "==== E5") {
		t.Error("file output missing experiment header")
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty when -o is set: %q", out.String())
	}
}

func TestMainExitCodes(t *testing.T) {
	// Same convention as crbench (internal/cli): 0 for help and success,
	// 2 for misuse, 1 for runtime failures.
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help short", []string{"-h"}, 0},
		{"help long", []string{"-help"}, 0},
		{"success", []string{"-ids", "E5", "-quick", "-trials", "2", "-shards", "2"}, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad id", []string{"-ids", "E999"}, 2},
		{"bad format", []string{"-format", "pdf"}, 2},
		{"zero shards", []string{"-ids", "E5", "-shards", "0"}, 2},
		{"resume without dir", []string{"-ids", "E5", "-resume"}, 2},
		{"negative workers", []string{"-ids", "E5", "-shards", "2", "-workers", "-1"}, 2},
		{"unreachable endpoint", []string{"-ids", "E5", "-quick", "-trials", "2", "-shards", "2",
			"-endpoints", "http://127.0.0.1:1", "-retries", "0", "-backoff", "1ms"}, 1},
	}
	for _, tc := range cases {
		if got := mainExitCode(tc.args); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}
