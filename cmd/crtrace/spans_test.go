package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fadingcr/internal/obs"
)

// writeSpanLog emits a span log shaped exactly like the coordinator's: a run
// span over two shards, shard 0 clean, shard 1 retried once and finally
// finished by a straggler re-dispatch on a second executor.
func writeSpanLog(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spans.ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	log := obs.NewSpanLog(f)
	run := log.Begin("run", obs.F("shards", 2), obs.F("executors", 2), obs.F("spec", "0011aabbccdd"))
	run.Event("resume", obs.F("resumed", 1))

	d0 := run.Child("dispatch", obs.F("shard", 0), obs.F("executor", "local-0"), obs.F("straggler", false))
	e0 := d0.Child("execute", obs.F("shard", 0), obs.F("attempt", 1))
	e0.End(obs.F("ok", true))
	d0.End(obs.F("ok", true))

	d1 := run.Child("dispatch", obs.F("shard", 1), obs.F("executor", "local-0"), obs.F("straggler", false))
	e1 := d1.Child("execute", obs.F("shard", 1), obs.F("attempt", 1))
	e1.End(obs.F("ok", false))
	d1.Event("retry", obs.F("attempt", 2), obs.F("error", "transient"))
	d1.Event("backoff", obs.F("ms", int64(1)))
	e2 := d1.Child("execute", obs.F("shard", 1), obs.F("attempt", 2))
	e2.End(obs.F("ok", false))
	d1.End(obs.F("ok", false))

	d2 := run.Child("dispatch", obs.F("shard", 1), obs.F("executor", "http://b:1"), obs.F("straggler", true))
	e3 := d2.Child("execute", obs.F("shard", 1), obs.F("attempt", 1))
	e3.End(obs.F("ok", true))
	d2.End(obs.F("ok", true))

	m := run.Child("merge", obs.F("shards", 2))
	m.End(obs.F("ok", true))
	run.End(obs.F("failed", 0))
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSpansSubcommandSummarizesCoordinatorLog(t *testing.T) {
	path := writeSpanLog(t)
	var out, errw bytes.Buffer
	if code := run([]string{"spans", path}, &out, &errw); code != 0 {
		t.Fatalf("spans exited %d: %s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{
		"spec=0011aabbccdd shards=2 executors=2",
		"resume    1 shard(s) loaded from checkpoints",
		"outcome   all shards merged",
		"merge",
		"shard 1 re-dispatched to http://b:1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("spans output missing %q:\n%s", want, got)
		}
	}
	// Per-shard table: shard 0 one clean attempt; shard 1 two dispatches,
	// three attempts, one retry, one straggler, both executors attributed.
	lines := strings.Split(got, "\n")
	var s0, s1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "0 ") {
			s0 = l
		}
		if strings.HasPrefix(l, "1 ") {
			s1 = l
		}
	}
	if s0 == "" || s1 == "" {
		t.Fatalf("per-shard rows missing:\n%s", got)
	}
	f0 := strings.Fields(s0)
	if f0[1] != "1" || f0[2] != "1" || f0[3] != "0" || f0[4] != "0" {
		t.Errorf("shard 0 row wrong: %q", s0)
	}
	f1 := strings.Fields(s1)
	if f1[1] != "2" || f1[2] != "3" || f1[3] != "1" || f1[4] != "1" {
		t.Errorf("shard 1 row wrong: %q", s1)
	}
	if !strings.Contains(s1, "http://b:1") || !strings.Contains(s1, "local-0") {
		t.Errorf("shard 1 executor attribution wrong: %q", s1)
	}
}

func TestSpansRejectsNonSpanLogs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-spans.ndjson")
	if err := os.WriteFile(path, []byte("{\"event\":\"run\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errw bytes.Buffer
	if code := run([]string{"spans", path}, &out, &errw); code == 0 {
		t.Error("non-span log accepted")
	}
	if !strings.Contains(errw.String(), "not a span log") {
		t.Errorf("unhelpful error: %s", errw.String())
	}
}
