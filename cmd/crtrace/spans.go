// The spans subcommand analyses coordinator span logs (crshard/crbench
// -span-log): NDJSON streams of begin/event/end lines recording the
// dispatch → execute → retry → merge lifecycle of a sharded run.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"fadingcr/internal/cli"
	"fadingcr/internal/obs"
	"fadingcr/internal/viz"
)

// spanLine is the union of the span-log line shapes plus every field the
// coordinator's instrumentation attaches. Optional numerics that have a
// meaningful zero (shard 0, ok=false) decode through pointers so absence is
// distinguishable.
type spanLine struct {
	Event  string `json:"event"`
	Schema int    `json:"schema"`
	Phase  string `json:"phase"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	Span   uint64 `json:"span"`
	Name   string `json:"name"`
	TUs    int64  `json:"t_us"`
	DurUs  int64  `json:"dur_us"`

	Shards    int    `json:"shards"`
	Executors int    `json:"executors"`
	Spec      string `json:"spec"`
	Shard     *int   `json:"shard"`
	Executor  string `json:"executor"`
	Straggler *bool  `json:"straggler"`
	Attempt   int    `json:"attempt"`
	OK        *bool  `json:"ok"`
	Error     string `json:"error"`
	Failed    *int   `json:"failed"`
	Resumed   int    `json:"resumed"`
	MS        int64  `json:"ms"`
}

// spanRec is one reassembled span: its begin line plus the end line's
// duration/outcome and any events attributed to it.
type spanRec struct {
	begin  spanLine
	durUs  int64
	ended  bool
	ok     *bool
	failed *int
	events []spanLine
}

// readSpans parses a span log: header, then begin/event/end lines
// reassembled by span id.
func readSpans(r io.Reader) (map[uint64]*spanRec, []uint64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, nil, err
		}
		return nil, nil, fmt.Errorf("empty span log")
	}
	var head spanLine
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		return nil, nil, fmt.Errorf("parse span-log header: %w", err)
	}
	if head.Event != "spans" {
		return nil, nil, fmt.Errorf("not a span log (header event %q, want spans)", head.Event)
	}
	if head.Schema != obs.SpanSchemaVersion {
		return nil, nil, fmt.Errorf("span-log schema %d, want %d", head.Schema, obs.SpanSchemaVersion)
	}
	spans := map[uint64]*spanRec{}
	var order []uint64
	lineNo := 1
	for sc.Scan() {
		lineNo++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var l spanLine
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			return nil, nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if l.Event != "span" {
			return nil, nil, fmt.Errorf("line %d: unexpected event %q", lineNo, l.Event)
		}
		switch l.Phase {
		case "begin":
			if _, dup := spans[l.ID]; dup {
				return nil, nil, fmt.Errorf("line %d: span id %d begun twice", lineNo, l.ID)
			}
			spans[l.ID] = &spanRec{begin: l}
			order = append(order, l.ID)
		case "event":
			if s := spans[l.Span]; s != nil {
				s.events = append(s.events, l)
			}
		case "end":
			if s := spans[l.ID]; s != nil {
				s.durUs, s.ended, s.ok, s.failed = l.DurUs, true, l.OK, l.Failed
			}
		default:
			return nil, nil, fmt.Errorf("line %d: unknown span phase %q", lineNo, l.Phase)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return spans, order, nil
}

// usDur renders a microsecond count as a compact duration.
func usDur(us int64) string {
	return time.Duration(us * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}

// shardStats accumulates one shard's dispatch history.
type shardStats struct {
	dispatches int
	attempts   int
	retries    int
	stragglers int
	busyUs     int64
	ok         bool
	executors  []string
}

func runSpans(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("crtrace spans", flag.ContinueOnError)
	fs.SetOutput(errw)
	width := fs.Int("width", 40, "timeline bar width in characters")
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	if fs.NArg() != 1 {
		return cli.Usagef("spans: want exactly one span-log file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	spans, order, err := readSpans(f)
	if err != nil {
		return fmt.Errorf("%s: %w", fs.Arg(0), err)
	}

	var run *spanRec
	perShard := map[int]*shardStats{}
	var stragglerLines []string
	for _, id := range order {
		s := spans[id]
		switch s.begin.Name {
		case "run":
			run = s
		case "dispatch":
			if s.begin.Shard == nil {
				continue
			}
			shard := *s.begin.Shard
			st := perShard[shard]
			if st == nil {
				st = &shardStats{}
				perShard[shard] = st
			}
			st.dispatches++
			st.executors = append(st.executors, s.begin.Executor)
			if s.ok != nil && *s.ok {
				st.ok = true
			}
			if s.begin.Straggler != nil && *s.begin.Straggler {
				st.stragglers++
				stragglerLines = append(stragglerLines,
					fmt.Sprintf("shard %d re-dispatched to %s at %s", shard, s.begin.Executor, usDur(s.begin.TUs)))
			}
			for _, ev := range s.events {
				if ev.Name == "retry" {
					st.retries++
				}
			}
		case "execute":
			if s.begin.Shard == nil {
				continue
			}
			st := perShard[*s.begin.Shard]
			if st == nil {
				st = &shardStats{}
				perShard[*s.begin.Shard] = st
			}
			st.attempts++
			st.busyUs += s.durUs
		}
	}

	if run == nil {
		return fmt.Errorf("%s: span log has no run span", fs.Arg(0))
	}
	fmt.Fprintf(out, "run       spec=%s shards=%d executors=%d", run.begin.Spec, run.begin.Shards, run.begin.Executors)
	if run.ended {
		fmt.Fprintf(out, " duration=%s", usDur(run.durUs))
	}
	fmt.Fprintln(out)
	for _, ev := range run.events {
		if ev.Name == "resume" {
			fmt.Fprintf(out, "resume    %d shard(s) loaded from checkpoints\n", ev.Resumed)
		}
	}
	if run.failed != nil && *run.failed > 0 {
		fmt.Fprintf(out, "outcome   %d shard(s) failed\n", *run.failed)
	} else if run.ended {
		fmt.Fprintln(out, "outcome   all shards merged")
	}
	for _, id := range order {
		if s := spans[id]; s.begin.Name == "merge" && s.ended {
			fmt.Fprintf(out, "merge     %s\n", usDur(s.durUs))
		}
	}

	shardIdx := make([]int, 0, len(perShard))
	for i := range perShard {
		shardIdx = append(shardIdx, i)
	}
	sort.Ints(shardIdx)
	if len(shardIdx) > 0 {
		fmt.Fprintf(out, "\n%-6s %-10s %-9s %-8s %-11s %-10s %s\n",
			"shard", "dispatches", "attempts", "retries", "stragglers", "busy", "executors")
		labels := make([]string, 0, len(shardIdx))
		values := make([]int, 0, len(shardIdx))
		for _, i := range shardIdx {
			st := perShard[i]
			execs := append([]string(nil), st.executors...)
			sort.Strings(execs)
			execs = dedupeStrings(execs)
			fmt.Fprintf(out, "%-6d %-10d %-9d %-8d %-11d %-10s %s\n",
				i, st.dispatches, st.attempts, st.retries, st.stragglers, usDur(st.busyUs), strings.Join(execs, ","))
			labels = append(labels, fmt.Sprintf("shard %d", i))
			values = append(values, int(st.busyUs))
		}
		fmt.Fprintf(out, "\nexecute time per shard (µs):\n%s", viz.Bars(labels, values, *width))
	}
	if len(stragglerLines) > 0 {
		fmt.Fprintln(out, "\nstraggler re-dispatches:")
		for _, l := range stragglerLines {
			fmt.Fprintf(out, "  %s\n", l)
		}
	}
	return nil
}

// dedupeStrings collapses adjacent duplicates of a sorted slice.
func dedupeStrings(xs []string) []string {
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || out[len(out)-1] != x {
			out = append(out, x)
		}
	}
	return out
}
