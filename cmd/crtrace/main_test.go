package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/trace"
)

// writeTrace runs one traced execution and writes it under dir.
func writeTrace(t *testing.T, dir, name string, f trace.Format, deploySeed, protoSeed uint64) string {
	t.Helper()
	const n = 10
	d, err := geom.UniformDisk(deploySeed, n)
	if err != nil {
		t.Fatal(err)
	}
	params := sinr.Params{Alpha: 3, Beta: 1.5, Noise: 1}
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)
	ch, err := sinr.New(params, d.Points)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{PerNode: true, Classes: true}
	rec.Header = trace.Header{
		Schema: trace.SchemaVersion, Cmd: "crtrace_test", N: n,
		Seed: protoSeed, DeploySeed: deploySeed,
		Algo: "fixedprob", Channel: "sinr", MaxRounds: 2000, Points: d.Points,
	}
	trace.Attach(rec, ch)
	if _, err := sim.Run(ch, core.FixedProbability{}, protoSeed, sim.Config{MaxRounds: 2000, Tracer: rec}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Write(rec, out); err != nil {
		t.Fatal(err)
	}
	if err := out.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSummary(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.ndjson", trace.FormatNDJSON, 3, 7)
	b := writeTrace(t, dir, "b.crtrace", trace.FormatBinary, 3, 8)
	var out, errw strings.Builder
	if code := run([]string{"summary", a, b}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"traces    2", "solved", "rounds", "energy"} {
		if !strings.Contains(got, want) {
			t.Errorf("summary output missing %q:\n%s", want, got)
		}
	}
}

func TestDiffIdenticalAndDivergent(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.ndjson", trace.FormatNDJSON, 5, 11)
	b := writeTrace(t, dir, "b.crtrace", trace.FormatBinary, 5, 11)
	c := writeTrace(t, dir, "c.ndjson", trace.FormatNDJSON, 5, 12)

	var out, errw strings.Builder
	if code := run([]string{"diff", a, b}, &out, &errw); code != 0 {
		t.Fatalf("same-seed diff exit %d: %s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "identical") {
		t.Errorf("diff output = %q", out.String())
	}

	out.Reset()
	if code := run([]string{"diff", a, c}, &out, &errw); code != 1 {
		t.Fatalf("divergent diff exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), "diverge") {
		t.Errorf("diff output = %q", out.String())
	}
}

func TestRender(t *testing.T) {
	dir := t.TempDir()
	a := writeTrace(t, dir, "a.ndjson", trace.FormatNDJSON, 2, 9)
	var out, errw strings.Builder
	if code := run([]string{"render", a}, &out, &errw); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errw.String())
	}
	got := out.String()
	for _, want := range []string{"deployment:", "transmitters", "result:", "link classes"} {
		if !strings.Contains(got, want) {
			t.Errorf("render output missing %q:\n%s", want, got)
		}
	}
}

func TestUsageAndErrors(t *testing.T) {
	var out, errw strings.Builder
	if code := run(nil, &out, &errw); code != 2 {
		t.Errorf("no-args exit %d, want 2", code)
	}
	if code := run([]string{"-h"}, &out, &errw); code != 0 {
		t.Errorf("-h exit %d, want 0", code)
	}
	if code := run([]string{"bogus"}, &out, &errw); code != 2 {
		t.Errorf("unknown command exit %d, want 2", code)
	}
	if code := run([]string{"diff", "only-one"}, &out, &errw); code != 2 {
		t.Errorf("diff arity exit %d, want 2", code)
	}
	if code := run([]string{"summary", filepath.Join(t.TempDir(), "missing.ndjson")}, &out, &errw); code != 1 {
		t.Errorf("missing file exit %d, want 1", code)
	}
	errw.Reset()
	if code := run([]string{"summary", "-h"}, &out, &errw); code != 0 {
		t.Errorf("summary -h exit %d, want 0", code)
	}
	if !strings.Contains(errw.String(), "width") {
		t.Errorf("summary -h printed no flag usage: %q", errw.String())
	}
}
