// Command crtrace analyses structured trace files written by crsim and
// crbench (internal/trace NDJSON or binary; formats are sniffed, so the two
// can be mixed freely).
//
// Usage:
//
//	crtrace summary trace.ndjson...   # outcomes, round-of-success, contention curve, energy
//	crtrace diff a.ndjson b.ndjson    # first divergent event; exit 0 iff identical
//	crtrace render trace.ndjson       # deployment scatter + per-round sparklines
//	crtrace spans spans.ndjson        # coordinator span log: per-shard timelines
//
// diff is the determinism contract made executable: two same-seed runs must
// produce traces it finds identical (floats compare by bit pattern, not
// tolerance).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"fadingcr/internal/cli"
	"fadingcr/internal/stats"
	"fadingcr/internal/trace"
	"fadingcr/internal/viz"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(errw io.Writer) {
	fmt.Fprintln(errw, `usage: crtrace <command> [flags] <trace-file>...

commands:
  summary   aggregate one or more traces: outcomes, round-of-success
            distribution, contention curve, per-node transmit counts
  diff      compare two traces event by event; prints the first divergence
            and exits 1, or exits 0 when byte-equivalent
  render    visualise one trace: deployment scatter plus per-round
            transmitter/reception sparklines
  spans     summarise a coordinator span log (crshard/crbench -span-log):
            per-shard timelines, retry counts, straggler attribution

Trace files may be NDJSON or binary (the format is sniffed per file).`)
}

func run(args []string, out, errw io.Writer) int {
	if len(args) == 0 {
		usage(errw)
		return 2
	}
	var err error
	switch args[0] {
	case "summary":
		err = runSummary(args[1:], out, errw)
	case "diff":
		return runDiff(args[1:], out, errw)
	case "render":
		err = runRender(args[1:], out, errw)
	case "spans":
		err = runSpans(args[1:], out, errw)
	case "-h", "-help", "--help", "help":
		usage(errw)
		return 0
	default:
		fmt.Fprintf(errw, "crtrace: unknown command %q\n\n", args[0])
		usage(errw)
		return 2
	}
	if err != nil {
		if !cli.IsHelp(err) {
			fmt.Fprintln(errw, "crtrace:", err)
		}
		return cli.ExitCode(err)
	}
	return 0
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := trace.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return t, nil
}

func runSummary(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("crtrace summary", flag.ContinueOnError)
	fs.SetOutput(errw)
	width := fs.Int("width", 60, "sparkline/bar width in characters")
	topN := fs.Int("top", 5, "busiest nodes to list in the energy section")
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	if fs.NArg() == 0 {
		return cli.Usagef("summary: no trace files")
	}
	var traces []*trace.Trace
	for _, path := range fs.Args() {
		t, err := readTrace(path)
		if err != nil {
			return err
		}
		traces = append(traces, t)
	}
	s := trace.Summarize(traces)
	h := traces[0].Header
	fmt.Fprintf(out, "traces    %d (%s, algo=%s, channel=%s, n=%d)\n",
		s.Traces, h.Cmd, h.Algo, h.Channel, h.N)
	fmt.Fprintf(out, "outcome   %d solved, %d unsolved\n", s.Solved, s.Unsolved)

	rounds := make([]float64, len(s.Rounds))
	for i, r := range s.Rounds {
		rounds[i] = float64(r)
	}
	if sum, err := stats.Summarize(rounds); err == nil {
		fmt.Fprintf(out, "rounds    min=%.0f median=%.0f mean=%.1f max=%.0f\n",
			sum.Min, stats.Median(rounds), sum.Mean, sum.Max)
	}
	if len(s.Rounds) > 1 {
		sorted := append([]int(nil), s.Rounds...)
		sort.Ints(sorted)
		fmt.Fprintf(out, "          %s  (round of success, sorted)\n", viz.Sparkline(clamp(sorted, *width)))
	}

	if len(s.MeanTx) > 0 {
		curve := make([]int, len(s.MeanTx))
		for i, m := range s.MeanTx {
			curve[i] = int(m*100 + 0.5) // centi-transmitters keep small means visible
		}
		fmt.Fprintf(out, "contention %s  (mean transmitters/round ×100, rounds 1..%d)\n",
			viz.Sparkline(clamp(curve, *width)), len(curve))
	}

	var total int64
	for _, c := range s.Transmissions {
		if c > 0 {
			total += c
		}
	}
	fmt.Fprintf(out, "energy    %d transmissions total\n", total)
	if len(s.NodeTx) > 0 && *topN > 0 {
		type nodeCount struct {
			node  int
			count int64
		}
		busy := make([]nodeCount, 0, len(s.NodeTx))
		for v, c := range s.NodeTx {
			busy = append(busy, nodeCount{v, c})
		}
		sort.Slice(busy, func(i, j int) bool {
			if busy[i].count != busy[j].count {
				return busy[i].count > busy[j].count
			}
			return busy[i].node < busy[j].node
		})
		if len(busy) > *topN {
			busy = busy[:*topN]
		}
		labels := make([]string, len(busy))
		values := make([]int, len(busy))
		for i, b := range busy {
			labels[i] = fmt.Sprintf("node %d", b.node)
			values[i] = int(b.count)
		}
		fmt.Fprint(out, viz.Bars(labels, values, *width))
	}
	return nil
}

// clamp downsamples a series to at most width points (taking every kth), so
// sparklines fit a terminal row regardless of run length.
func clamp(values []int, width int) []int {
	if width < 1 || len(values) <= width {
		return values
	}
	out := make([]int, 0, width)
	for i := 0; i < width; i++ {
		out = append(out, values[i*len(values)/width])
	}
	return out
}

func runDiff(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("crtrace diff", flag.ContinueOnError)
	fs.SetOutput(errw)
	if err := fs.Parse(args); err != nil {
		return cli.ExitCode(cli.Usage(err))
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(errw, "crtrace: diff wants exactly two trace files")
		return 2
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(errw, "crtrace:", err)
		return 2
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(errw, "crtrace:", err)
		return 2
	}
	d := trace.Diff(a, b)
	if d == nil {
		fmt.Fprintf(out, "identical: %d records\n", len(a.Records))
		return 0
	}
	if d.Index < 0 {
		fmt.Fprintf(out, "headers diverge at %s: %s vs %s\n", d.Field, d.A, d.B)
		return 1
	}
	fmt.Fprintf(out, "first divergence at record %d, field %s: %s vs %s\n", d.Index, d.Field, d.A, d.B)
	if d.Index < len(a.Records) && d.Index < len(b.Records) {
		ra, rb := a.Records[d.Index], b.Records[d.Index]
		fmt.Fprintf(out, "  a: %s round=%d node=%d\n", ra.Kind, ra.Round, ra.Node)
		fmt.Fprintf(out, "  b: %s round=%d node=%d\n", rb.Kind, rb.Round, rb.Node)
	}
	return 1
}

func runRender(args []string, out, errw io.Writer) error {
	fs := flag.NewFlagSet("crtrace render", flag.ContinueOnError)
	fs.SetOutput(errw)
	width := fs.Int("width", 60, "render width in characters")
	height := fs.Int("height", 20, "scatter height in rows")
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	if fs.NArg() != 1 {
		return cli.Usagef("render: want exactly one trace file")
	}
	t, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	h := t.Header
	fmt.Fprintf(out, "%s trial %d: algo=%s channel=%s n=%d seed=%#x deploy=%#x\n",
		h.Cmd, h.Trial, h.Algo, h.Channel, h.N, h.Seed, h.DeploySeed)
	if len(h.Points) > 0 {
		fmt.Fprintln(out, "\ndeployment:")
		fmt.Fprint(out, viz.Scatter(h.Points, nil, *width, *height))
	}
	var tx, active []int
	haveActive := true
	for _, r := range t.Records {
		if r.Kind != trace.KindRound {
			continue
		}
		tx = append(tx, int(r.Tx))
		if r.Active < 0 {
			haveActive = false
		}
		active = append(active, int(r.Active))
	}
	if len(tx) > 0 {
		fmt.Fprintf(out, "\ntransmitters %s  (rounds 1..%d)\n", viz.Sparkline(clamp(tx, *width)), len(tx))
		if haveActive {
			fmt.Fprintf(out, "active       %s\n", viz.Sparkline(clamp(active, *width)))
		}
	}
	for _, r := range t.Records {
		if r.Kind == trace.KindResult {
			outcome := "unsolved"
			if r.Solved {
				outcome = fmt.Sprintf("solved in round %d by node %d", r.Round, r.Node)
			}
			fmt.Fprintf(out, "\nresult: %s, %d transmissions\n", outcome, r.Transmissions)
		}
	}
	var pretty []string
	for _, r := range t.Records {
		if r.Kind == trace.KindClasses && len(pretty) < 1 {
			sizes := t.ClassSizes(r)
			parts := make([]string, len(sizes))
			for i, s := range sizes {
				parts[i] = fmt.Sprint(s)
			}
			pretty = append(pretty, strings.Join(parts, " "))
		}
	}
	if len(pretty) > 0 {
		fmt.Fprintf(out, "initial link classes: [%s]\n", pretty[0])
	}
	return nil
}
