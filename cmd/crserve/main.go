// Command crserve is the simulation-farm daemon: an HTTP/JSON job service
// over the repository's Monte Carlo engine (internal/serve). Clients
// submit the same workloads crsim and crbench run from the command line
// and get deterministic, cacheable results back — the same job spec and
// seed always produce byte-identical bodies, at any -workers value.
//
// Usage:
//
//	crserve                                # listen on 127.0.0.1:8344
//	crserve -addr :8080 -workers 4
//	crserve -queue-depth 64 -cache-entries 512
//	crserve -pprof -metrics metrics.ndjson
//
// Endpoints:
//
//	POST   /v1/jobs              submit a job (JSON spec)
//	GET    /v1/jobs/{id}         status
//	GET    /v1/jobs/{id}/result  result body
//	GET    /v1/jobs/{id}/stream  NDJSON progress stream
//	DELETE /v1/jobs/{id}         cancel
//	GET    /healthz /readyz /metrics
//
// SIGINT/SIGTERM drain gracefully: intake stops (readyz turns 503),
// accepted jobs run to completion within -drain-timeout, then the
// process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"fadingcr/internal/cli"
	"fadingcr/internal/obs"
	"fadingcr/internal/serve"
	"fadingcr/internal/sinr"
)

func main() {
	os.Exit(mainExitCode(os.Args[1:], nil, nil))
}

// mainExitCode runs the daemon and maps its error to the process exit
// status (0 ok/help, 2 flag misuse, 1 runtime failure), keeping main
// testable. ready (if non-nil) receives the bound address once the
// daemon serves; shutdown (if non-nil) triggers the same graceful drain
// a signal would — both are test hooks.
func mainExitCode(args []string, ready chan<- string, shutdown <-chan struct{}) int {
	err := run(args, ready, shutdown)
	if err != nil && !cli.IsHelp(err) {
		fmt.Fprintln(os.Stderr, "crserve:", err)
	}
	return cli.ExitCode(err)
}

func run(args []string, ready chan<- string, shutdown <-chan struct{}) (err error) {
	fs := flag.NewFlagSet("crserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8344", "TCP listen address")
		workers      = fs.Int("workers", 2, "jobs run concurrently (results are identical at any value)")
		queueDepth   = fs.Int("queue-depth", 16, "jobs that may wait beyond the running ones before submits get 429")
		cacheEntries = fs.Int("cache-entries", 128, "result-cache capacity in entries (negative disables caching)")
		jobParallel  = fs.Int("job-parallel", runtime.GOMAXPROCS(0), "worker goroutines per job's trial loop (results are identical at any value)")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight jobs")
		pprofFlag    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		farfieldEps  = fs.Float64("farfield-eps", 0, "server default ε far-field pruning for specs that leave it unset (0 disables; injected pre-normalization, so job hashes reflect it)")
		sinrParallel = fs.Int("sinr-parallel", 0, "server default intra-round SINR Deliver workers for specs that leave it unset (0 keeps the sequential engine)")
	)
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	if *workers < 1 {
		return cli.Usagef("-workers must be ≥ 1, got %d", *workers)
	}
	if *queueDepth < 1 {
		return cli.Usagef("-queue-depth must be ≥ 1, got %d", *queueDepth)
	}
	if *jobParallel < 1 {
		return cli.Usagef("-job-parallel must be ≥ 1, got %d", *jobParallel)
	}
	if *drainTimeout <= 0 {
		return cli.Usagef("-drain-timeout must be positive, got %v", *drainTimeout)
	}
	if _, err := sinr.EngineOptions("auto", *farfieldEps, *sinrParallel); err != nil {
		return cli.Usage(err)
	}
	finish, err := obsFlags.Start("crserve")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()

	d, err := serve.StartDaemon(serve.DaemonConfig{
		Addr: *addr,
		Executor: serve.Options{
			Workers:        *workers,
			QueueDepth:     *queueDepth,
			CacheEntries:   *cacheEntries,
			JobParallelism: *jobParallel,
			FarFieldEps:    *farfieldEps,
			SINRParallel:   *sinrParallel,
		},
		LogWriter:   os.Stderr,
		EnablePprof: *pprofFlag,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crserve: listening on %s (workers %d, queue %d, cache %d)\n",
		d.Addr(), *workers, *queueDepth, *cacheEntries)
	if ready != nil {
		ready <- d.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case <-shutdown:
	}
	stop() // a second signal during the drain kills the process the hard way

	fmt.Fprintf(os.Stderr, "crserve: draining (budget %v)\n", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout) //crlint:allow nowallclock graceful-drain budget bounds wall time only
	defer cancel()
	if err := d.Shutdown(dctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "crserve: drained, bye")
	return nil
}
