package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestMainExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help long", []string{"-help"}, 0},
		{"help short", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad flag value", []string{"-workers", "banana"}, 2},
		{"zero workers", []string{"-workers", "0"}, 2},
		{"zero queue", []string{"-queue-depth", "0"}, 2},
		{"zero job-parallel", []string{"-job-parallel", "0"}, 2},
		{"zero drain-timeout", []string{"-drain-timeout", "0s"}, 2},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:1"}, 1},
	}
	for _, tc := range cases {
		if got := mainExitCode(tc.args, nil, nil); got != tc.want {
			t.Errorf("%s: exit %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestDaemonRoundTrip boots the real daemon on an ephemeral port, runs the
// whole client workflow over TCP, then drains it via the shutdown hook —
// the same path a signal takes.
func TestDaemonRoundTrip(t *testing.T) {
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	exit := make(chan int, 1)
	go func() {
		exit <- mainExitCode([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, ready, shutdown)
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case code := <-exit:
		t.Fatalf("daemon exited %d before serving", code)
	}

	spec := `{"sim":{"n":16,"deploy":"disk","algo":"fixed"},"seed":5,"trials":3}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: HTTP %d %+v", resp.StatusCode, st)
	}

	deadline := time.Now().Add(60 * time.Second)
	var body []byte
	for {
		r, err := http.Get(base + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, err = io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: HTTP %d %s", r.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !bytes.Contains(body, []byte(`"kind": "sim"`)) {
		t.Errorf("result body unexpected:\n%s", body)
	}

	close(shutdown)
	select {
	case code := <-exit:
		if code != 0 {
			t.Errorf("daemon exited %d after graceful drain, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never exited after shutdown")
	}
}
