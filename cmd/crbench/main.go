// Command crbench regenerates the reproduction experiments of DESIGN.md §6
// and prints their tables.
//
// Usage:
//
//	crbench                       # run everything at full scale
//	crbench -ids E1,E3 -quick     # selected experiments, small sweeps
//	crbench -format markdown -o results.md
//	crbench -parallel 4 -timeout 10m
//	crbench -gaincache off            # force on-the-fly SINR computation
//
// Trial loops run on the parallel Monte Carlo engine (internal/runner);
// -parallel never changes results, only wall-clock time.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"fadingcr/internal/cli"
	"fadingcr/internal/experiments"
	"fadingcr/internal/obs"
	"fadingcr/internal/shard"
	"fadingcr/internal/sinr"
	"fadingcr/internal/trace"
)

func main() {
	os.Exit(mainExitCode(os.Args[1:]))
}

// mainExitCode runs the command and maps its error to the process exit
// status (help is a success; see internal/cli), keeping main testable.
func mainExitCode(args []string) int {
	err := run(args, os.Stdout)
	if err != nil && !cli.IsHelp(err) {
		fmt.Fprintln(os.Stderr, "crbench:", err)
	}
	return cli.ExitCode(err)
}

func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("crbench", flag.ContinueOnError)
	var (
		list         = fs.Bool("list", false, "list the registered experiments and exit")
		ids          = fs.String("ids", "all", "comma-separated experiment ids (e.g. E1,E3) or 'all'")
		quick        = fs.Bool("quick", false, "small sweeps for a fast smoke run")
		seed         = fs.Uint64("seed", 1, "master seed")
		trials       = fs.Int("trials", 0, "trials per data point (0 = experiment default)")
		format       = fs.String("format", "text", "output format: text|markdown")
		out          = fs.String("o", "", "write output to this file instead of stdout")
		parallel     = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines per trial loop (results are identical at any value)")
		timeout      = fs.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
		gaincache    = fs.String("gaincache", "auto", "SINR gain-cache engine: auto|on|off (results are identical in every mode)")
		shards       = fs.Int("shards", 1, "split every trial loop into this many shards and run them through the shard coordinator (output is byte-identical at any count)")
		farfieldEps  = fs.Float64("farfield-eps", 0, "ε far-field pruning for SINR delivery (0 = exact; ε > 0 trades a bounded one-sided reception error for speed)")
		sinrParallel = fs.Int("sinr-parallel", 0, "intra-round SINR Deliver workers (0/1 sequential; deterministic channels are identical at any value)")

		spanLog       = fs.String("span-log", "", "write coordinator scheduling spans (NDJSON) to this file; requires -shards > 1 (analyse with crtrace spans)")
		traceDir      = fs.String("trace-dir", "", "write per-trial structured traces into this directory (analyse with crtrace)")
		traceFmt      = fs.String("trace-format", "ndjson", "structured trace format: ndjson|binary")
		traceEvery    = fs.Int("trace-every", 100, "trace every Kth trial of each trial loop")
		traceFailures = fs.Bool("trace-failures", false, "keep only unsolved trials' traces")
		traceClasses  = fs.Bool("trace-classes", false, "include per-round link-class censuses in traces")
	)
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	// One shared parsing/validation path with crserve: the spec resolves
	// ids, the gain-cache mode, and the trial count in one place.
	selected, cfg, err := experiments.ConfigFromSpec(experiments.Spec{
		IDs:          *ids,
		Seed:         *seed,
		Trials:       *trials,
		Quick:        *quick,
		GainCache:    *gaincache,
		FarFieldEps:  *farfieldEps,
		SINRParallel: *sinrParallel,
	})
	if err != nil {
		return cli.Usage(err)
	}
	finish, err := obsFlags.Start("crbench")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()
	if *format != "text" && *format != "markdown" {
		return cli.Usagef("unknown format %q", *format)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %s\n     %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout) //crlint:allow nowallclock CLI -timeout flag bounds wall time only
		defer cancel()
	}
	effective := *parallel
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}

	cfg.Parallelism = *parallel
	cfg.Context = ctx
	if *traceDir != "" {
		traceFormat, err := trace.ParseFormat(*traceFmt)
		if err != nil {
			return cli.Usage(err)
		}
		if *shards <= 1 {
			cfg.Trace, err = trace.NewCapture("crbench", trace.Policy{
				Dir:          *traceDir,
				Format:       traceFormat,
				EveryK:       *traceEvery,
				FailuresOnly: *traceFailures,
				Classes:      *traceClasses,
			})
			if err != nil {
				return err
			}
		}
	}
	if *spanLog != "" && *shards <= 1 {
		return cli.Usagef("-span-log records coordinator scheduling spans and requires -shards > 1")
	}
	if *shards > 1 {
		// Sharded run: the coordinator executes every trial-loop shard
		// through local workers and the assembler re-renders the tables.
		// Byte-identical to the unsharded path at any shard count (timing
		// lines go to stderr in both paths for exactly this reason). With
		// -trace-dir the workers capture under global trial indices and ship
		// bundles back; the federated directory is byte-identical to an
		// unsharded capture.
		req := shard.Request{
			Spec: experiments.Spec{
				IDs:          *ids,
				Seed:         *seed,
				Trials:       *trials,
				Quick:        *quick,
				GainCache:    *gaincache,
				FarFieldEps:  *farfieldEps,
				SINRParallel: *sinrParallel,
			},
			Shards: *shards,
		}
		if *traceDir != "" {
			req.Trace = &shard.TraceSpec{
				Format:   *traceFmt,
				EveryK:   *traceEvery,
				Failures: *traceFailures,
				Classes:  *traceClasses,
			}
		}
		coord := shard.Coordinator{
			Executors: []shard.Executor{&shard.Local{Parallelism: *parallel}},
			Log:       os.Stderr,
		}
		if *spanLog != "" {
			f, err := os.Create(*spanLog)
			if err != nil {
				return err
			}
			defer f.Close()
			coord.Spans = obs.NewSpanLog(f)
		}
		runStart := time.Now() //crlint:allow nowallclock CLI elapsed-time summary
		merged, err := coord.Run(ctx, req)
		if err != nil {
			return err
		}
		if err := shard.Assemble(ctx, w, req, merged, *format == "markdown"); err != nil {
			return err
		}
		if *traceDir != "" {
			n, err := merged.WriteTraceDir(*traceDir)
			if err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "crbench: %d trace files federated from %d shard(s) into %s\n", n, *shards, *traceDir)
		}
		if coord.Spans != nil {
			if serr := coord.Spans.Err(); serr != nil {
				return fmt.Errorf("span log: %w", serr)
			}
		}
		fmt.Fprintf(os.Stderr, "crbench: %d experiment(s), %d shard(s) in %v (parallelism %d, gain cache %s: %s)\n",
			len(selected), *shards, time.Since(runStart).Round(time.Millisecond), effective, //crlint:allow nowallclock CLI elapsed-time summary
			*gaincache, sinr.ReadGainCacheStats())
		return nil
	} else if *shards < 1 {
		return cli.Usagef("-shards must be >= 1 (got %d)", *shards)
	}
	runStart := time.Now() //crlint:allow nowallclock CLI elapsed-time summary
	for _, e := range selected {
		start := time.Now() //crlint:allow nowallclock per-experiment elapsed-time line
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := experiments.RenderTables(w, e, tables, *format == "markdown"); err != nil {
			return err
		}
		// Timing goes to stderr so table output is byte-identical run to
		// run and across shard counts.
		//crlint:allow nowallclock per-experiment elapsed-time line
		fmt.Fprintf(os.Stderr, "(%s completed in %v)\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "\n%d experiment(s) in %v (parallelism %d, gain cache %s: %s)\n",
		len(selected), time.Since(runStart).Round(time.Millisecond), effective, //crlint:allow nowallclock CLI elapsed-time summary
		*gaincache, sinr.ReadGainCacheStats())
	if cfg.Trace != nil {
		// Stderr, so table output stays byte-identical with tracing on or off.
		fmt.Fprintf(os.Stderr, "crbench: %d trace files written to %s (%d dropped by retention)\n",
			len(cfg.Trace.Written()), *traceDir, cfg.Trace.Dropped())
	}
	return nil
}
