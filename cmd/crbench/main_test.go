package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSelectedQuick(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"==== E5", "Claim:", "good"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunMarkdownFormat(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-format", "markdown"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "| --- |") {
		t.Errorf("markdown table separator missing:\n%s", out.String())
	}
}

func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var out strings.Builder
	if err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "==== E5") {
		t.Error("file output missing experiment header")
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty when -o is set: %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-ids", "E99"}, &out); err == nil {
		t.Error("unknown id accepted")
	}
	if err := run([]string{"-format", "pdf"}, &out); err == nil {
		t.Error("unknown format accepted")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMultipleIDsWithSpaces(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-ids", "E5, E4", "-quick", "-trials", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "==== E5") || !strings.Contains(out.String(), "==== E4") {
		t.Error("both experiments should have run")
	}
}

func TestRunShardedMatchesUnsharded(t *testing.T) {
	var plain, sharded strings.Builder
	if err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-seed", "9"}, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-ids", "E5", "-quick", "-trials", "2", "-seed", "9", "-shards", "3"}, &sharded); err != nil {
		t.Fatal(err)
	}
	if plain.String() != sharded.String() {
		t.Errorf("-shards 3 output differs from unsharded:\n--- unsharded ---\n%s\n--- sharded ---\n%s", plain.String(), sharded.String())
	}
}

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E1 ") || !strings.Contains(got, "E17") {
		t.Errorf("list output missing experiments:\n%s", got)
	}
}

func TestMainExitCodes(t *testing.T) {
	// The shared convention (internal/cli): 0 for -h/-help and success,
	// 2 for misuse (unknown flags or invalid flag values), 1 for runtime
	// failures.
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help short", []string{"-h"}, 0},
		{"help long", []string{"-help"}, 0},
		{"success", []string{"-list"}, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad id", []string{"-ids", "E999"}, 2},
		{"bad format", []string{"-format", "pdf"}, 2},
		{"negative trials", []string{"-ids", "E5", "-trials", "-3"}, 2},
		{"zero shards", []string{"-ids", "E5", "-quick", "-trials", "2", "-shards", "0"}, 2},
	}
	for _, tc := range cases {
		if got := mainExitCode(tc.args); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}
