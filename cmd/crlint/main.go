// Command crlint runs the repository's determinism and hot-path analyzers
// (internal/lint) over Go packages. It works in two modes:
//
// Standalone, over package patterns (the `make lint` developer loop):
//
//	crlint ./...
//	crlint -tests=false fadingcr/internal/sinr
//
// As a `go vet` tool, speaking the vet unit-checker protocol (one process
// per compilation unit, driven by a vet.cfg file; this is how CI runs it):
//
//	go vet -vettool=$(which crlint) ./...
//
// With no analyzer flags every analyzer runs; naming one or more analyzer
// flags (-xrandonly, -maporder, ...) restricts the run to those.
//
// Exit status: 0 clean, 1 driver failure, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fadingcr/internal/lint"
	"fadingcr/internal/obs"
)

func main() {
	vFlag := flag.String("V", "", "print version information and exit (go vet passes -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the analyzer flag definitions as JSON and exit (go vet flag discovery)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as NDJSON (one diag event per line plus a summary line)")
	testsFlag := flag.Bool("tests", true, "also lint test compilation units (standalone mode)")
	flag.Int("c", -1, "unused; accepted for go vet compatibility")

	selected := map[string]*bool{}
	for _, a := range lint.All() {
		selected[a.Name] = flag.Bool(a.Name, false, a.Doc)
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion()
	case *flagsFlag:
		printFlagDefs()
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		os.Exit(runUnit(flag.Arg(0), chosenAnalyzers(selected), *jsonFlag))
	default:
		os.Exit(runStandalone(flag.Args(), *testsFlag, chosenAnalyzers(selected), *jsonFlag))
	}
}

// chosenAnalyzers returns the analyzers named by flags, or all of them when
// none were named.
func chosenAnalyzers(selected map[string]*bool) []*lint.Analyzer {
	var chosen []*lint.Analyzer
	for _, a := range lint.All() {
		if *selected[a.Name] {
			chosen = append(chosen, a)
		}
	}
	if len(chosen) == 0 {
		return lint.All()
	}
	return chosen
}

// printVersion emits the `name version ...` line go vet's tool-ID probe
// expects; the content hash of the executable keys go's build cache so
// stale vet results are invalidated when crlint changes.
func printVersion() {
	name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// printFlagDefs emits the JSON flag list go vet uses to validate the
// analyzer flags a user passes on its command line.
func printFlagDefs() {
	type flagDef struct {
		Name  string
		Bool  bool
		Usage string
	}
	defs := []flagDef{}
	for _, a := range lint.All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, err := json.Marshal(defs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crlint:", err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// printDiagnostics renders diagnostics for humans (go vet relays stderr) or,
// under -json, as an NDJSON event stream on out: one "diag" line per
// diagnostic followed by a single "summary" line, in the same line shape the
// structured-trace serializer emits (internal/obs.LineEncoder). The summary
// line is written even when the run is clean, so a CI artifact of the stream
// records checked-and-clean rather than being empty. Returns the process
// exit code.
func printDiagnostics(out io.Writer, diags []lint.Diagnostic, asJSON bool) int {
	if !asJSON {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d.String())
		}
		if len(diags) == 0 {
			return 0
		}
		return 2
	}
	enc := obs.NewLineEncoder(out)
	for _, d := range diags {
		enc.Begin("diag")
		enc.Str("file", d.Pos.Filename)
		enc.Int("line", int64(d.Pos.Line))
		enc.Int("col", int64(d.Pos.Column))
		enc.Str("rule", d.Rule)
		enc.Str("message", d.Message)
		enc.End()
	}
	enc.Begin("summary")
	enc.Int("diags", int64(len(diags)))
	enc.Bool("clean", len(diags) == 0)
	if err := enc.End(); err != nil {
		return fatalf("write diagnostics: %v", err)
	}
	if len(diags) == 0 {
		return 0
	}
	return 2
}

func fatalf(format string, args ...any) int {
	fmt.Fprintf(os.Stderr, "crlint: "+format+"\n", args...)
	return 1
}
