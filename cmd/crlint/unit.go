package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"

	"fadingcr/internal/lint"
)

// Vet-tool mode: `go vet -vettool=crlint` invokes the binary once per
// compilation unit with a JSON config file describing the unit — source
// files, the import map, and the export-data file for every dependency
// (already built by the go command). This mirrors the protocol of
// golang.org/x/tools/go/analysis/unitchecker, which is not available in
// this build environment; crlint has no cross-package facts, so the facts
// (.vetx) outputs it writes are empty.

// vetConfig is the vet.cfg schema written by cmd/go for each unit.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one vet compilation unit, returning the process exit
// code (0 clean, 1 driver failure, 2 diagnostics).
func runUnit(cfgPath string, analyzers []*lint.Analyzer, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fatalf("%v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fatalf("parse %s: %v", cfgPath, err)
	}

	// The go command caches the facts file keyed by tool ID; crlint exports
	// none, so an empty file satisfies the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return fatalf("write facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	resolve := func(path string) (string, error) {
		canonical := path
		if mapped, ok := cfg.ImportMap[path]; ok {
			canonical = mapped
		}
		if file, ok := cfg.PackageFile[canonical]; ok {
			return file, nil
		}
		return "", fmt.Errorf("no export data for %q in unit %s", path, cfg.ImportPath)
	}
	pkg, err := lint.TypeCheck(fset, cfg.ImportPath, files, lint.ExportImporter(fset, resolve), cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fatalf("%v", err)
	}
	return printDiagnostics(os.Stdout, lint.Run(pkg, analyzers), asJSON)
}
