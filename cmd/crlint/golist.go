package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"fadingcr/internal/lint"
)

// Standalone mode: enumerate and type-check packages with the go command.
// `go list -export` compiles every package into the build cache and hands
// back the export-data files; crlint then parses the sources itself (go list
// does not ship syntax) and type-checks them against that export data, which
// is exactly the scheme `go vet` uses — minus the process-per-package fan
// out.

// listPackage is the subset of `go list -json` output the driver needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Imports    []string
	Deps       []string
	DepOnly    bool
	Standard   bool
	Module     *struct {
		GoVersion string
	}
}

// runStandalone lints the packages matching patterns (default ./...) in the
// current directory's module.
func runStandalone(patterns []string, tests bool, analyzers []*lint.Analyzer, asJSON bool) int {
	diags, err := lintPatterns(".", patterns, tests, analyzers)
	if err != nil {
		return fatalf("%v", err)
	}
	return printDiagnostics(os.Stdout, diags, asJSON)
}

// lintPatterns is the engine behind standalone mode, factored for tests: it
// lints the packages matching patterns relative to dir and returns the
// deduplicated, position-sorted diagnostics.
func lintPatterns(dir string, patterns []string, tests bool, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-export", "-deps", "-json"}
	if tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list: %v", err)
	}

	var pkgs []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parse go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		pkgs = append(pkgs, &p)
	}

	var all []lint.Diagnostic
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test main
		}
		diags, err := lintUnit(p, exports, analyzers)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return dedup(all), nil
}

// lintUnit parses and type-checks one listed package and runs the analyzers
// over it.
func lintUnit(p *listPackage, exports map[string]string, analyzers []*lint.Analyzer) ([]lint.Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}

	// Resolve imports through the package's own dependency view so test
	// variants ("p [p.test]") shadow the plain package they recompile.
	variant := map[string]string{}
	for _, dep := range append(append([]string{}, p.Imports...), p.Deps...) {
		if i := strings.IndexByte(dep, ' '); i >= 0 {
			variant[dep[:i]] = dep
		}
	}
	resolve := func(path string) (string, error) {
		if v, ok := variant[path]; ok {
			if file, ok := exports[v]; ok {
				return file, nil
			}
		}
		if file, ok := exports[path]; ok {
			return file, nil
		}
		return "", fmt.Errorf("no export data for %q (imported by %s)", path, p.ImportPath)
	}

	goVersion := ""
	if p.Module != nil {
		goVersion = p.Module.GoVersion
	}
	pkg, err := lint.TypeCheck(fset, p.ImportPath, files, lint.ExportImporter(fset, resolve), goVersion)
	if err != nil {
		return nil, err
	}
	return lint.Run(pkg, analyzers), nil
}

// dedup removes duplicate findings: with -test, a package's non-test files
// are compiled both plainly and inside the test variant, and would
// otherwise be reported twice. Input slices are already position-sorted per
// unit; the merged result is re-sorted by lint.Run's ordering via simple
// insertion here.
func dedup(diags []lint.Diagnostic) []lint.Diagnostic {
	seen := map[string]bool{}
	out := diags[:0]
	for _, d := range diags {
		key := d.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}
