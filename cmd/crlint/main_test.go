package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fadingcr/internal/lint"
)

// moduleRoot locates the repository root from the test's working directory
// (cmd/crlint).
func moduleRoot(t testing.TB) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// TestRepoClean is the acceptance gate: the repository, including its test
// compilation units, must produce zero diagnostics under the full suite.
func TestRepoClean(t *testing.T) {
	diags, err := lintPatterns(moduleRoot(t), []string{"./..."}, true, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

// writeBadModule builds a scratch module violating every rule in the suite
// and returns its directory.
func writeBadModule(t testing.TB) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		// Path suffix internal/xrand exempts the stub from xrandonly, like
		// the real seed-derivation layer.
		"internal/xrand/xrand.go": `package xrand

import "math/rand/v2"

func New(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed)) }

func Split(seed, i uint64) uint64 { return seed ^ (i+1)*0x9e3779b97f4a7c15 }
`,
		"bad.go": `package scratch

import (
	"fmt"
	"math/rand"
	"time"
)

func Timing() time.Time { return time.Now() }

func Legacy() int { return rand.Int() }

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

//crlint:hotpath
func Hot(n int) []int { return make([]int, n) }
`,
		"seeds.go": `package scratch

import "scratch/internal/xrand"

func Correlated(seed uint64) uint64 {
	a := xrand.New(seed)
	b := xrand.New(seed)
	return a.Uint64() ^ b.Uint64()
}

func Replayed(seed uint64, n int) uint64 {
	acc := uint64(0)
	for i := 0; i < n; i++ {
		acc += xrand.New(seed).Uint64()
	}
	return acc
}
`,
		"par.go": `package scratch

func Fan(out []int) {
	for w := 0; w < len(out); w++ {
		go func() { out[0] = w }()
	}
}

func SumDown(xs []float64) float64 {
	var s float64
	for i := len(xs) - 1; i >= 0; i-- {
		s += xs[i]
	}
	return s
}

//crlint:spechash
type Spec struct {
	Kind string ` + "`json:\"kind\"`" + `
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestBadModuleDiagnostics re-introduces one violation per rule in a scratch
// module and checks every analyzer fires.
func TestBadModuleDiagnostics(t *testing.T) {
	diags, err := lintPatterns(writeBadModule(t), []string{"./..."}, true, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Rule] = true
	}
	for _, a := range lint.All() {
		if !fired[a.Name] {
			t.Errorf("rule %s did not fire on the bad module; got:\n%v", a.Name, diags)
		}
	}
}

// TestVetToolProtocol exercises the `go vet -vettool` unit-checker protocol
// end to end: tool-ID probe, flag discovery, per-unit runs, facts files. The
// repository must pass; the bad module must fail mentioning a rule.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets two modules")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "crlint")
	build := exec.Command("go", "build", "-o", bin, "fadingcr/cmd/crlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build crlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=crlint failed on a clean repository: %v\n%s", err, out)
	}

	vetBad := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vetBad.Dir = writeBadModule(t)
	out, err := vetBad.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool=crlint passed the bad module:\n%s", out)
	}
	for _, rule := range []string{
		"xrandonly", "nowallclock", "maporder", "seedsplit",
		"hotalloc", "partwrite", "floatorder", "spechash",
	} {
		if !strings.Contains(string(out), "["+rule+"]") {
			t.Errorf("vet output lacks a %s diagnostic:\n%s", rule, out)
		}
	}
}

// ndjsonEvent is the decoded shape of one crlint -json line.
type ndjsonEvent struct {
	Event   string `json:"event"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Diags   int    `json:"diags"`
	Clean   bool   `json:"clean"`
}

// decodeNDJSON parses every line of an NDJSON stream.
func decodeNDJSON(t *testing.T, stream []byte) []ndjsonEvent {
	t.Helper()
	var events []ndjsonEvent
	for _, line := range bytes.Split(bytes.TrimSpace(stream), []byte("\n")) {
		var ev ndjsonEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		events = append(events, ev)
	}
	return events
}

// TestPrintDiagnosticsNDJSON checks the -json stream shape: one "diag" event
// per diagnostic carrying position, rule, and message, closed by a "summary"
// event with the count.
func TestPrintDiagnosticsNDJSON(t *testing.T) {
	diags := []lint.Diagnostic{
		{Pos: token.Position{Filename: "a.go", Line: 3, Column: 7}, Rule: "hotalloc", Message: `make call with "quotes"`},
		{Pos: token.Position{Filename: "b.go", Line: 9, Column: 2}, Rule: "spechash", Message: "needs omitempty"},
	}
	var buf bytes.Buffer
	if code := printDiagnostics(&buf, diags, true); code != 2 {
		t.Fatalf("exit code = %d with diagnostics, want 2", code)
	}
	events := decodeNDJSON(t, buf.Bytes())
	if len(events) != 3 {
		t.Fatalf("got %d events, want 2 diags + 1 summary:\n%s", len(events), buf.String())
	}
	for i, d := range diags {
		ev := events[i]
		if ev.Event != "diag" || ev.File != d.Pos.Filename || ev.Line != d.Pos.Line ||
			ev.Col != d.Pos.Column || ev.Rule != d.Rule || ev.Message != d.Message {
			t.Errorf("event %d = %+v does not round-trip diagnostic %v", i, ev, d)
		}
	}
	if sum := events[2]; sum.Event != "summary" || sum.Diags != 2 || sum.Clean {
		t.Errorf("summary = %+v, want event=summary diags=2 clean=false", events[2])
	}
}

// TestPrintDiagnosticsNDJSONClean checks a clean run still writes a summary
// line (the CI artifact must record checked-and-clean, not be empty).
func TestPrintDiagnosticsNDJSONClean(t *testing.T) {
	var buf bytes.Buffer
	if code := printDiagnostics(&buf, nil, true); code != 0 {
		t.Fatalf("exit code = %d on a clean run, want 0", code)
	}
	events := decodeNDJSON(t, buf.Bytes())
	if len(events) != 1 || events[0].Event != "summary" || events[0].Diags != 0 || !events[0].Clean {
		t.Errorf("clean stream = %+v, want exactly one summary with diags=0 clean=true", events)
	}
}

// BenchmarkCrlintRepo times a full standalone lint of the repository —
// enumerate, type-check against export data, and run all eight analyzers
// over every compilation unit including tests. Tracks the cost of the
// interprocedural call-graph layer as the tree grows.
func BenchmarkCrlintRepo(b *testing.B) {
	root := moduleRoot(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		diags, err := lintPatterns(root, []string{"./..."}, true, lint.All())
		if err != nil {
			b.Fatal(err)
		}
		if len(diags) != 0 {
			b.Fatalf("repository is not lint-clean: %v", diags)
		}
	}
}
