package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"fadingcr/internal/lint"
)

// moduleRoot locates the repository root from the test's working directory
// (cmd/crlint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// TestRepoClean is the acceptance gate: the repository, including its test
// compilation units, must produce zero diagnostics under the full suite.
func TestRepoClean(t *testing.T) {
	diags, err := lintPatterns(moduleRoot(t), []string{"./..."}, true, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repository is not lint-clean: %s", d)
	}
}

// writeBadModule builds a scratch module violating every rule in the suite
// and returns its directory.
func writeBadModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module scratch\n\ngo 1.24\n",
		// Path suffix internal/xrand exempts the stub from xrandonly, like
		// the real seed-derivation layer.
		"internal/xrand/xrand.go": `package xrand

import "math/rand/v2"

func New(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, seed)) }

func Split(seed, i uint64) uint64 { return seed ^ (i+1)*0x9e3779b97f4a7c15 }
`,
		"bad.go": `package scratch

import (
	"fmt"
	"math/rand"
	"time"
)

func Timing() time.Time { return time.Now() }

func Legacy() int { return rand.Int() }

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

//crlint:hotpath
func Hot(n int) []int { return make([]int, n) }
`,
		"seeds.go": `package scratch

import "scratch/internal/xrand"

func Correlated(seed uint64) uint64 {
	a := xrand.New(seed)
	b := xrand.New(seed)
	return a.Uint64() ^ b.Uint64()
}

func Replayed(seed uint64, n int) uint64 {
	acc := uint64(0)
	for i := 0; i < n; i++ {
		acc += xrand.New(seed).Uint64()
	}
	return acc
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestBadModuleDiagnostics re-introduces one violation per rule in a scratch
// module and checks every analyzer fires.
func TestBadModuleDiagnostics(t *testing.T) {
	diags, err := lintPatterns(writeBadModule(t), []string{"./..."}, true, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	fired := map[string]bool{}
	for _, d := range diags {
		fired[d.Rule] = true
	}
	for _, a := range lint.All() {
		if !fired[a.Name] {
			t.Errorf("rule %s did not fire on the bad module; got:\n%v", a.Name, diags)
		}
	}
}

// TestVetToolProtocol exercises the `go vet -vettool` unit-checker protocol
// end to end: tool-ID probe, flag discovery, per-unit runs, facts files. The
// repository must pass; the bad module must fail mentioning a rule.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and vets two modules")
	}
	root := moduleRoot(t)
	bin := filepath.Join(t.TempDir(), "crlint")
	build := exec.Command("go", "build", "-o", bin, "fadingcr/cmd/crlint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build crlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool=crlint failed on a clean repository: %v\n%s", err, out)
	}

	vetBad := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vetBad.Dir = writeBadModule(t)
	out, err := vetBad.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool=crlint passed the bad module:\n%s", out)
	}
	for _, rule := range []string{"xrandonly", "nowallclock", "maporder", "seedsplit", "hotalloc"} {
		if !strings.Contains(string(out), "["+rule+"]") {
			t.Errorf("vet output lacks a %s diagnostic:\n%s", rule, out)
		}
	}
}
