// Command crhitting plays the restricted k-hitting game of the paper's
// lower bound (Section 4) and reports the empirical round distribution.
//
// Usage:
//
//	crhitting -k 1024 -player half -trials 500
//	crhitting -k 256 -player cr-fixed        # Lemma 14 reduction player
//	crhitting -k 1024 -trials 10000 -parallel 8 -timeout 2m
//
// Games run on the parallel Monte Carlo engine (internal/runner);
// -parallel never changes results, only wall-clock time.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"fadingcr/internal/baselines"
	"fadingcr/internal/cli"
	"fadingcr/internal/core"
	"fadingcr/internal/hitting"
	"fadingcr/internal/obs"
	"fadingcr/internal/runner"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

// engineOpts are the runner settings shared by both game loops.
type engineOpts struct {
	ctx      context.Context
	parallel int
}

// runGames executes one game per trial on the engine, failing on the first
// per-trial error in trial order (like the sequential loops it replaced).
func runGames(eo engineOpts, trials int, fn func(trial int) (float64, error)) ([]float64, error) {
	res, err := runner.Run(eo.ctx, trials,
		func(_ context.Context, trial int) (float64, error) { return fn(trial) },
		runner.Options[float64]{Parallelism: eo.parallel})
	if err != nil {
		return nil, err
	}
	if err := res.FirstErr(); err != nil {
		return nil, err
	}
	return res.Values, nil
}

func main() {
	os.Exit(mainExitCode(os.Args[1:]))
}

// mainExitCode runs the command and maps its error to the process exit
// status (help is a success; see internal/cli), keeping main testable.
func mainExitCode(args []string) int {
	err := run(args)
	if err != nil && !cli.IsHelp(err) {
		fmt.Fprintln(os.Stderr, "crhitting:", err)
	}
	return cli.ExitCode(err)
}

// runAdversary evaluates the player against the optimal (worst-case) target
// choice — exact for the oblivious players this command offers.
func runAdversary(eo engineOpts, k, trials int, seed uint64, makePlayer func(seed uint64) (hitting.Player, error)) error {
	values, err := runGames(eo, trials, func(trial int) (float64, error) {
		p, err := makePlayer(xrand.Split(seed, uint64(trial)+1<<40))
		if err != nil {
			return 0, err
		}
		wc, err := hitting.ObliviousWorstCase(p, k, 20000)
		if err != nil {
			return 0, err
		}
		if wc.Survived {
			return 0, fmt.Errorf("trial %d: a target survived the 20000-round budget", trial)
		}
		return float64(wc.Rounds), nil
	})
	if err != nil {
		return err
	}
	s, err := stats.Summarize(values)
	if err != nil {
		return err
	}
	tab := table.New(fmt.Sprintf("adversarial %d-hitting value, %d player seeds", k, trials),
		"statistic", "rounds")
	tab.AddRow("mean", table.Float(s.Mean, 2))
	tab.AddRow("median", table.Float(s.Median, 1))
	tab.AddRow("max", table.Float(s.Max, 0))
	tab.AddRow("2·log2(k) reference", table.Float(2*math.Log2(float64(k)), 1))
	fmt.Print(tab.Text())
	return nil
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("crhitting", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 256, "universe size of the hitting game (k ≥ 2)")
		player    = fs.String("player", "half", "player: half|density|cr-fixed|cr-sweep")
		q         = fs.Float64("q", 0.5, "density for -player density")
		trials    = fs.Int("trials", 500, "number of independent games")
		seed      = fs.Uint64("seed", 1, "master seed")
		adversary = fs.Bool("adversary", false, "compute the exact worst-case-referee value instead of the random-referee distribution")
		parallel  = fs.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines (results are identical at any value)")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the run (0 = none)")
	)
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	switch *player {
	case "half", "density", "cr-fixed", "cr-sweep":
	default:
		return cli.Usagef("unknown player %q (want half|density|cr-fixed|cr-sweep)", *player)
	}
	finish, err := obsFlags.Start("crhitting")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout) //crlint:allow nowallclock CLI -timeout flag bounds wall time only
		defer cancel()
	}
	eo := engineOpts{ctx: ctx, parallel: *parallel}

	makePlayer := func(seed uint64) (hitting.Player, error) {
		switch *player {
		case "half":
			return hitting.NewFixedDensityPlayer(*k, 0.5, seed)
		case "density":
			return hitting.NewFixedDensityPlayer(*k, *q, seed)
		case "cr-fixed":
			return hitting.NewSimulationPlayer(core.FixedProbability{}, *k, seed)
		case "cr-sweep":
			return hitting.NewSimulationPlayer(baselines.ProbabilitySweep{}, *k, seed)
		default:
			return nil, fmt.Errorf("unknown player %q", *player)
		}
	}

	start := time.Now() //crlint:allow nowallclock CLI elapsed-time summary
	effective := *parallel
	if effective <= 0 {
		effective = runtime.GOMAXPROCS(0)
	}
	if *adversary {
		if err := runAdversary(eo, *k, *trials, *seed, makePlayer); err != nil {
			return err
		}
		//crlint:allow nowallclock CLI elapsed-time summary
		fmt.Printf("(%d games in %v, parallelism %d)\n", *trials, time.Since(start).Round(time.Millisecond), effective)
		return nil
	}

	rounds, err := runGames(eo, *trials, func(trial int) (float64, error) {
		ref, err := hitting.NewReferee(*k, xrand.Split(*seed, uint64(trial)))
		if err != nil {
			return 0, err
		}
		p, err := makePlayer(xrand.Split(*seed, uint64(trial)+1<<32))
		if err != nil {
			return 0, err
		}
		r, won, err := hitting.Play(ref, p, 10000000)
		if err != nil {
			return 0, err
		}
		if !won {
			return 0, fmt.Errorf("trial %d never won", trial)
		}
		return float64(r), nil
	})
	if err != nil {
		return err
	}

	s, err := stats.Summarize(rounds)
	if err != nil {
		return err
	}
	sort.Float64s(rounds)
	tab := table.New(fmt.Sprintf("restricted %d-hitting game, player=%s, %d trials", *k, *player, *trials),
		"statistic", "rounds")
	tab.AddRow("mean", table.Float(s.Mean, 2))
	tab.AddRow("median", table.Float(s.Median, 1))
	tab.AddRow("p95", table.Float(stats.Quantile(rounds, 0.95), 1))
	tab.AddRow(fmt.Sprintf("p(1-1/k) = p%.4g", 100*(1-1/float64(*k))), table.Float(stats.Quantile(rounds, 1-1/float64(*k)), 1))
	tab.AddRow("max", table.Float(s.Max, 0))
	tab.AddRow("log2(k) reference", table.Float(math.Log2(float64(*k)), 1))
	fmt.Print(tab.Text())
	//crlint:allow nowallclock CLI elapsed-time summary
	fmt.Printf("(%d games in %v, parallelism %d)\n", *trials, time.Since(start).Round(time.Millisecond), effective)
	return nil
}
