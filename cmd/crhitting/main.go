// Command crhitting plays the restricted k-hitting game of the paper's
// lower bound (Section 4) and reports the empirical round distribution.
//
// Usage:
//
//	crhitting -k 1024 -player half -trials 500
//	crhitting -k 256 -player cr-fixed        # Lemma 14 reduction player
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"fadingcr/internal/baselines"
	"fadingcr/internal/core"
	"fadingcr/internal/hitting"
	"fadingcr/internal/stats"
	"fadingcr/internal/table"
	"fadingcr/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "crhitting:", err)
		os.Exit(1)
	}
}

// runAdversary evaluates the player against the optimal (worst-case) target
// choice — exact for the oblivious players this command offers.
func runAdversary(k, trials int, seed uint64, makePlayer func(seed uint64) (hitting.Player, error)) error {
	values := make([]float64, 0, trials)
	for trial := 0; trial < trials; trial++ {
		p, err := makePlayer(xrand.Split(seed, uint64(trial)+1<<40))
		if err != nil {
			return err
		}
		wc, err := hitting.ObliviousWorstCase(p, k, 20000)
		if err != nil {
			return err
		}
		if wc.Survived {
			return fmt.Errorf("trial %d: a target survived the 20000-round budget", trial)
		}
		values = append(values, float64(wc.Rounds))
	}
	s, err := stats.Summarize(values)
	if err != nil {
		return err
	}
	tab := table.New(fmt.Sprintf("adversarial %d-hitting value, %d player seeds", k, trials),
		"statistic", "rounds")
	tab.AddRow("mean", table.Float(s.Mean, 2))
	tab.AddRow("median", table.Float(s.Median, 1))
	tab.AddRow("max", table.Float(s.Max, 0))
	tab.AddRow("2·log2(k) reference", table.Float(2*math.Log2(float64(k)), 1))
	fmt.Print(tab.Text())
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("crhitting", flag.ContinueOnError)
	var (
		k         = fs.Int("k", 256, "universe size of the hitting game (k ≥ 2)")
		player    = fs.String("player", "half", "player: half|density|cr-fixed|cr-sweep")
		q         = fs.Float64("q", 0.5, "density for -player density")
		trials    = fs.Int("trials", 500, "number of independent games")
		seed      = fs.Uint64("seed", 1, "master seed")
		adversary = fs.Bool("adversary", false, "compute the exact worst-case-referee value instead of the random-referee distribution")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	makePlayer := func(seed uint64) (hitting.Player, error) {
		switch *player {
		case "half":
			return hitting.NewFixedDensityPlayer(*k, 0.5, seed)
		case "density":
			return hitting.NewFixedDensityPlayer(*k, *q, seed)
		case "cr-fixed":
			return hitting.NewSimulationPlayer(core.FixedProbability{}, *k, seed)
		case "cr-sweep":
			return hitting.NewSimulationPlayer(baselines.ProbabilitySweep{}, *k, seed)
		default:
			return nil, fmt.Errorf("unknown player %q", *player)
		}
	}

	if *adversary {
		return runAdversary(*k, *trials, *seed, makePlayer)
	}

	rounds := make([]float64, 0, *trials)
	for trial := 0; trial < *trials; trial++ {
		ref, err := hitting.NewReferee(*k, xrand.Split(*seed, uint64(trial)))
		if err != nil {
			return err
		}
		p, err := makePlayer(xrand.Split(*seed, uint64(trial)+1<<32))
		if err != nil {
			return err
		}
		r, won, err := hitting.Play(ref, p, 10000000)
		if err != nil {
			return err
		}
		if !won {
			return fmt.Errorf("trial %d never won", trial)
		}
		rounds = append(rounds, float64(r))
	}

	s, err := stats.Summarize(rounds)
	if err != nil {
		return err
	}
	sort.Float64s(rounds)
	tab := table.New(fmt.Sprintf("restricted %d-hitting game, player=%s, %d trials", *k, *player, *trials),
		"statistic", "rounds")
	tab.AddRow("mean", table.Float(s.Mean, 2))
	tab.AddRow("median", table.Float(s.Median, 1))
	tab.AddRow("p95", table.Float(stats.Quantile(rounds, 0.95), 1))
	tab.AddRow(fmt.Sprintf("p(1-1/k) = p%.4g", 100*(1-1/float64(*k))), table.Float(stats.Quantile(rounds, 1-1/float64(*k)), 1))
	tab.AddRow("max", table.Float(s.Max, 0))
	tab.AddRow("log2(k) reference", table.Float(math.Log2(float64(*k)), 1))
	fmt.Print(tab.Text())
	return nil
}
