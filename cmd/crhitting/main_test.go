package main

import "testing"

func TestRunPlayers(t *testing.T) {
	for _, player := range []string{"half", "density", "cr-fixed", "cr-sweep"} {
		if err := run([]string{"-k", "32", "-player", player, "-trials", "30", "-seed", "2"}); err != nil {
			t.Errorf("player %s: %v", player, err)
		}
	}
}

func TestRunCustomDensity(t *testing.T) {
	if err := run([]string{"-k", "16", "-player", "density", "-q", "0.25", "-trials", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-player", "nope", "-trials", "5"}); err == nil {
		t.Error("unknown player accepted")
	}
	if err := run([]string{"-k", "1", "-trials", "5"}); err == nil {
		t.Error("k=1 accepted")
	}
	if err := run([]string{"-player", "density", "-q", "2", "-trials", "5"}); err == nil {
		t.Error("q=2 accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunAdversaryMode(t *testing.T) {
	for _, player := range []string{"half", "cr-fixed"} {
		if err := run([]string{"-k", "16", "-player", player, "-trials", "8", "-adversary"}); err != nil {
			t.Errorf("adversary mode with %s: %v", player, err)
		}
	}
}

func TestMainExitCodes(t *testing.T) {
	// The shared convention (internal/cli): 0 for -h/-help and success,
	// 2 for misuse (unknown flags or invalid flag values), 1 for runtime
	// failures.
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help short", []string{"-h"}, 0},
		{"help long", []string{"-help"}, 0},
		{"success", []string{"-k", "16", "-trials", "5"}, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad player", []string{"-player", "nope", "-trials", "2"}, 2},
	}
	for _, tc := range cases {
		if got := mainExitCode(tc.args); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}
