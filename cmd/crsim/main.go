// Command crsim runs a single contention resolution simulation and prints
// the outcome (and optionally a per-round trace).
//
// Usage:
//
//	crsim -n 256 -deploy disk -algo fixed -channel sinr -seed 1 -trace
//
// Deployments, algorithms, and channels are resolved by name against
// internal/catalog — the same registry crserve job specs validate against:
//
//	Deployments: disk, square, grid, clusters, chain, pairs.
//	Algorithms:  fixed, sweep, decay, backoff, dampened, cdhalving, estimate.
//	Channels:    sinr, rayleigh, radio, radio-cd.
package main

import (
	"flag"
	"fmt"
	"os"

	"fadingcr/internal/catalog"
	"fadingcr/internal/cli"
	"fadingcr/internal/core"
	"fadingcr/internal/geom"
	"fadingcr/internal/obs"
	"fadingcr/internal/sim"
	"fadingcr/internal/sinr"
	"fadingcr/internal/stats"
	"fadingcr/internal/trace"
	"fadingcr/internal/viz"
	"fadingcr/internal/xrand"
)

func main() {
	os.Exit(mainExitCode(os.Args[1:]))
}

// mainExitCode runs the command and maps its error to the process exit
// status (help is a success; see internal/cli), keeping main testable.
func mainExitCode(args []string) int {
	err := run(args)
	if err != nil && !cli.IsHelp(err) {
		fmt.Fprintln(os.Stderr, "crsim:", err)
	}
	return cli.ExitCode(err)
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("crsim", flag.ContinueOnError)
	var (
		n            = fs.Int("n", 128, "number of participating nodes")
		deploy       = fs.String("deploy", "disk", "deployment: disk|square|grid|clusters|chain|pairs")
		algo         = fs.String("algo", "fixed", "algorithm: fixed|sweep|decay|backoff|dampened|cdhalving|estimate|interleaved|knockout-sweep|staggered")
		channel      = fs.String("channel", "sinr", "channel: sinr|rayleigh|radio|radio-cd")
		seed         = fs.Uint64("seed", 1, "master seed (deployment and protocol)")
		p            = fs.Float64("p", core.DefaultP, "broadcast probability for -algo fixed")
		alpha        = fs.Float64("alpha", 3, "path-loss exponent α > 2")
		beta         = fs.Float64("beta", 1.5, "SINR threshold β")
		noise        = fs.Float64("noise", 1, "ambient noise N")
		maxRounds    = fs.Int("max-rounds", 0, "round budget (0 = auto)")
		showTrace    = fs.Bool("trace", false, "print per-round transmitter/reception counts")
		csvPath      = fs.String("csv", "", "write the per-round trace as CSV to this file")
		plot         = fs.Bool("plot", false, "render an ASCII scatter of the deployment and activity sparklines")
		deployFile   = fs.String("deploy-file", "", "load node positions from this CSV (x,y per line) instead of -deploy")
		trials       = fs.Int("trials", 1, "number of independent runs; > 1 prints summary statistics")
		gaincache    = fs.String("gaincache", "auto", "SINR gain-cache engine: auto|on|off (results are identical in every mode)")
		farfieldEps  = fs.Float64("farfield-eps", 0, "ε far-field pruning for SINR delivery (0 = exact; ε > 0 trades a bounded one-sided reception error for speed)")
		sinrParallel = fs.Int("sinr-parallel", 0, "intra-round SINR Deliver workers (0/1 sequential; deterministic channels are identical at any value)")

		traceOut      = fs.String("trace-out", "", "write a structured event trace of the run to this file (analyse with crtrace)")
		traceFmt      = fs.String("trace-format", "ndjson", "structured trace format: ndjson|binary")
		traceClasses  = fs.Bool("trace-classes", false, "include per-round link-class censuses in structured traces")
		traceDir      = fs.String("trace-dir", "", "with -trials: write per-trial structured traces into this directory")
		traceEvery    = fs.Int("trace-every", 1, "with -trace-dir: trace every Kth trial")
		traceFailures = fs.Bool("trace-failures", false, "with -trace-dir: keep only unsolved trials' traces")
	)
	obsFlags := obs.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return cli.Usage(err)
	}
	sinrOpts, err := sinr.EngineOptions(*gaincache, *farfieldEps, *sinrParallel)
	if err != nil {
		return cli.Usage(err)
	}
	traceFormat, err := trace.ParseFormat(*traceFmt)
	if err != nil {
		return cli.Usage(err)
	}
	finish, err := obsFlags.Start("crsim")
	if err != nil {
		return err
	}
	defer func() {
		if ferr := finish(); err == nil {
			err = ferr
		}
	}()

	var d *geom.Deployment
	if *deployFile != "" {
		f, err := os.Open(*deployFile)
		if err != nil {
			return err
		}
		pts, rerr := geom.ReadPoints(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
		d, err = geom.NewDeployment(pts)
		if err != nil {
			return err
		}
		*deploy = *deployFile
	} else {
		d, err = catalog.Deployment(*deploy, *seed, *n)
		if err != nil {
			return cli.Usage(err)
		}
	}
	builder, err := catalog.Builder(*algo, *p, d.N())
	if err != nil {
		return cli.Usage(err)
	}

	params := sinr.Params{Alpha: *alpha, Beta: *beta, Noise: *noise}
	params.Power = sinr.MinSingleHopPower(params.Alpha, params.Beta, params.Noise, d.R, sinr.DefaultSingleHopMargin)

	built, err := catalog.Channel(*channel, params, d, *seed+1, sinrOpts...)
	if err != nil {
		return cli.Usage(err)
	}
	ch := built.Channel
	cacheBytes := built.GainCacheBytes
	cfg := sim.Config{CollisionDetection: built.CollisionDetection}

	cfg.MaxRounds = *maxRounds
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = catalog.DefaultMaxRounds(d.N())
	}
	// hdr is the trace identity template for structured capture; per-run
	// code fills in Trial and the protocol seed.
	hdr := trace.Header{
		Schema:     trace.SchemaVersion,
		Cmd:        "crsim",
		N:          d.N(),
		DeploySeed: *seed,
		Algo:       builder.Name(),
		Channel:    *channel,
		MaxRounds:  cfg.MaxRounds,
		Points:     d.Points,
	}

	rec := &trace.Recorder{}
	if *showTrace || *csvPath != "" || *plot {
		cfg.Tracer = rec
	}
	if *traceOut != "" && *trials == 1 {
		rec.PerNode = true
		rec.Classes = *traceClasses
		rec.Header = hdr
		rec.Header.Seed = *seed + 2
		cfg.Tracer = rec
		trace.Attach(rec, ch)
	}

	fmt.Printf("deployment: %s, n=%d, R=%.4g (%d possible link classes)\n", *deploy, d.N(), d.R, d.LinkClassCount())
	switch {
	case cacheBytes > 0:
		fmt.Printf("channel:    %s (α=%.3g β=%.3g N=%.3g P=%.4g, gain cache %s)\n",
			*channel, params.Alpha, params.Beta, params.Noise, params.Power, sinr.FormatBytes(cacheBytes))
	case cacheBytes == 0:
		fmt.Printf("channel:    %s (α=%.3g β=%.3g N=%.3g P=%.4g, gain cache off)\n",
			*channel, params.Alpha, params.Beta, params.Noise, params.Power)
	default:
		fmt.Printf("channel:    %s (α=%.3g β=%.3g N=%.3g P=%.4g)\n", *channel, params.Alpha, params.Beta, params.Noise, params.Power)
	}
	fmt.Printf("algorithm:  %s\n", builder.Name())

	if *trials > 1 {
		var capture *trace.Capture
		if *traceDir != "" {
			capture, err = trace.NewCapture("crsim", trace.Policy{
				Dir:          *traceDir,
				Format:       traceFormat,
				EveryK:       *traceEvery,
				FailuresOnly: *traceFailures,
				Classes:      *traceClasses,
			})
			if err != nil {
				return err
			}
		}
		return runTrials(ch, builder, *seed, cfg, *trials, capture, hdr)
	}

	res, err := sim.Run(ch, builder, *seed+2, cfg)
	if err != nil {
		return err
	}
	if res.Solved {
		fmt.Printf("SOLVED in round %d by node %d (%d total transmissions)\n", res.Rounds, res.Winner, res.Transmissions)
	} else {
		fmt.Printf("UNSOLVED after %d rounds (%d total transmissions)\n", res.Rounds, res.Transmissions)
	}

	if *plot {
		fmt.Printf("\ndeployment (x-y plane, %d nodes):\n%s\n", d.N(), viz.Scatter(d.Points, nil, 64, 18))
		var actives, txs []int
		for _, e := range rec.Events {
			actives = append(actives, e.Active)
			txs = append(txs, e.Transmitters)
		}
		fmt.Printf("active nodes per round:  %s\n", viz.Sparkline(actives))
		fmt.Printf("transmitters per round:  %s\n", viz.Sparkline(txs))
	}
	if *showTrace {
		for _, e := range rec.Events {
			fmt.Printf("  round %4d: tx=%4d recv=%4d active=%4d\n", e.Round, e.Transmitters, e.Receptions, e.Active)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *csvPath)
	}
	if *traceOut != "" {
		if err := writeStructuredTrace(rec, *traceOut, traceFormat); err != nil {
			return err
		}
	}
	return nil
}

// writeStructuredTrace serialises a structured recorder to path. The status
// line goes to stderr: stdout stays byte-identical with tracing on or off.
func writeStructuredTrace(rec *trace.Recorder, path string, f trace.Format) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	err = f.Write(rec, out)
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "crsim: structured trace written to %s\n", path)
	return nil
}

// runTrials executes several independent runs and prints summary statistics.
// Trials share one channel (the Rayleigh fade stream is stateful across
// runs), so capture attaches and detaches the recorder around each sampled
// trial; the loop stays sequential and its stdout is byte-identical with
// capture on or off.
func runTrials(ch sim.Channel, builder sim.Builder, seed uint64, cfg sim.Config, trials int, capture *trace.Capture, hdr trace.Header) error {
	var rounds []float64
	unsolved := 0
	for trial := 0; trial < trials; trial++ {
		protoSeed := xrand.Split(seed, uint64(trial))
		var rec *trace.Recorder
		if capture != nil {
			if rec = capture.Recorder(trial); rec != nil {
				h := hdr
				h.Trial = rec.Header.Trial
				h.Seed = protoSeed
				rec.Header = h
				cfg.Tracer = rec
				trace.Attach(rec, ch)
			}
		}
		res, err := sim.Run(ch, builder, protoSeed, cfg)
		if rec != nil {
			trace.Detach(ch)
			cfg.Tracer = nil
		}
		if err != nil {
			return err
		}
		if rec != nil {
			if err := capture.Commit(trial, rec, res.Solved); err != nil {
				return err
			}
		}
		if !res.Solved {
			unsolved++
		}
		rounds = append(rounds, float64(res.Rounds))
	}
	s, err := stats.Summarize(rounds)
	if err != nil {
		return err
	}
	fmt.Printf("trials:     %d (%d unsolved within %d rounds)\n", trials, unsolved, cfg.MaxRounds)
	fmt.Printf("rounds:     mean=%.1f median=%.1f p95=%.1f max=%.0f\n",
		s.Mean, s.Median, stats.QuantileOf(rounds, 0.95), s.Max)
	if capture != nil {
		fmt.Fprintf(os.Stderr, "crsim: %d trace files written to %s (%d dropped by retention)\n",
			len(capture.Written()), capture.Policy().Dir, capture.Dropped())
	}
	return nil
}
