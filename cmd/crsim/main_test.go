package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-n", "32", "-seed", "3"}); err != nil {
		t.Fatalf("default run: %v", err)
	}
}

func TestRunAllDeployments(t *testing.T) {
	for _, deploy := range []string{"disk", "square", "grid", "clusters", "chain", "pairs"} {
		if err := run([]string{"-n", "24", "-deploy", deploy}); err != nil {
			t.Errorf("deploy %s: %v", deploy, err)
		}
	}
	if err := run([]string{"-deploy", "nope"}); err == nil {
		t.Error("unknown deployment accepted")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	for _, algo := range []string{"fixed", "sweep", "decay", "backoff", "dampened", "interleaved", "knockout-sweep", "staggered"} {
		if err := run([]string{"-n", "16", "-algo", algo, "-channel", "radio"}); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
	if err := run([]string{"-n", "16", "-algo", "cdhalving", "-channel", "radio-cd"}); err != nil {
		t.Errorf("cdhalving: %v", err)
	}
	if err := run([]string{"-algo", "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestRunChannels(t *testing.T) {
	for _, ch := range []string{"sinr", "rayleigh", "radio"} {
		if err := run([]string{"-n", "16", "-channel", ch}); err != nil {
			t.Errorf("channel %s: %v", ch, err)
		}
	}
	if err := run([]string{"-channel", "nope"}); err == nil {
		t.Error("unknown channel accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run([]string{"-n", "16", "-csv", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "round,transmitters,receptions,active") {
		t.Errorf("CSV header missing: %q", string(data[:min(len(data), 60)]))
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunDeployFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pts.csv")
	if err := os.WriteFile(path, []byte("x,y\n0,0\n1,0\n0,3\n8,8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-deploy-file", path}); err != nil {
		t.Fatalf("deploy-file run: %v", err)
	}
	if err := run([]string{"-deploy-file", filepath.Join(t.TempDir(), "missing.csv")}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("x,y\n1,2\nbroken,row\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-deploy-file", bad}); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestRunTrialsSummary(t *testing.T) {
	if err := run([]string{"-n", "16", "-trials", "5", "-seed", "8"}); err != nil {
		t.Fatalf("trials run: %v", err)
	}
}

func TestRunPlotAndMaxRounds(t *testing.T) {
	if err := run([]string{"-n", "24", "-plot", "-max-rounds", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRadioCDChannel(t *testing.T) {
	if err := run([]string{"-n", "16", "-channel", "radio-cd", "-algo", "cdhalving"}); err != nil {
		t.Fatal(err)
	}
}

func TestMainExitCodes(t *testing.T) {
	// The shared convention (internal/cli): 0 for -h/-help and success,
	// 2 for misuse (unknown flags or invalid flag values), 1 for runtime
	// failures.
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"help short", []string{"-h"}, 0},
		{"help long", []string{"-help"}, 0},
		{"success", []string{"-n", "16", "-seed", "3"}, 0},
		{"bad flag", []string{"-definitely-not-a-flag"}, 2},
		{"bad deploy", []string{"-deploy", "nope"}, 2},
		{"bad algo", []string{"-algo", "nope"}, 2},
		{"bad channel", []string{"-channel", "nope"}, 2},
		{"bad gaincache", []string{"-gaincache", "sometimes"}, 2},
		{"missing deploy file", []string{"-deploy-file", "/no/such/file.csv"}, 1},
	}
	for _, tc := range cases {
		if got := mainExitCode(tc.args); got != tc.want {
			t.Errorf("%s: exit code %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestRunWritesMetricsAndProfiles(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.ndjson")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run([]string{"-n", "24", "-seed", "5",
		"-metrics", metrics, "-cpuprofile", cpu, "-memprofile", mem})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("metrics report has %d lines, want a run header plus metric events:\n%s", len(lines), data)
	}
	for i, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("metrics line %d %q: %v", i+1, line, err)
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["event"] != "run" || first["cmd"] != "crsim" {
		t.Errorf("header = %v, want a crsim run event", first)
	}
	if !strings.Contains(string(data), `"name":"sim.rounds"`) ||
		!strings.Contains(string(data), `"name":"sinr.deliveries"`) {
		t.Error("report missing the sim.rounds / sinr.deliveries metrics")
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
