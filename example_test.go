package fadingcr_test

import (
	"fmt"
	"log"

	fadingcr "fadingcr"
)

// ExampleSolve runs the paper's algorithm end to end on a small, fixed
// deployment. Results are deterministic in the seeds.
func ExampleSolve() {
	d, err := fadingcr.NewDeployment([]fadingcr.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 3}, {X: 5, Y: 5},
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := fadingcr.Solve(d, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved:", res.Solved)
	// Output:
	// solved: true
}

// ExampleRun shows the lower-level API: choose a channel and a protocol
// explicitly and drive the round engine.
func ExampleRun() {
	ch, err := fadingcr.NewRadioChannel(8, false)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fadingcr.Run(ch, fadingcr.ProbabilitySweep{}, 3,
		fadingcr.Config{MaxRounds: 10000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved:", res.Solved)
	// Output:
	// solved: true
}

// ExamplePlayHittingGame plays one instance of the restricted k-hitting
// game behind the paper's lower bound.
func ExamplePlayHittingGame() {
	ref, err := fadingcr.NewHittingReferee(32, 5)
	if err != nil {
		log.Fatal(err)
	}
	player, err := fadingcr.NewFixedDensityPlayer(32, 0.5, 6)
	if err != nil {
		log.Fatal(err)
	}
	_, won, err := fadingcr.PlayHittingGame(ref, player, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("won:", won)
	// Output:
	// won: true
}

// ExampleDeployment_Subset demonstrates partial activation: only the
// activated subset participates.
func ExampleDeployment_Subset() {
	d, err := fadingcr.UniformDisk(1, 100)
	if err != nil {
		log.Fatal(err)
	}
	idx, err := fadingcr.RandomSubset(2, 100, 10)
	if err != nil {
		log.Fatal(err)
	}
	active, err := d.Subset(idx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("participants:", active.N())
	// Output:
	// participants: 10
}
